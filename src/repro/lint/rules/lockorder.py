"""Lock-order rule: deadlock cycles and blocking calls under locks.

Builds the project's **lock-acquisition graph**: every ``with
self._lock:`` site (and explicit ``.acquire()``) is an acquisition of a
*canonical* lock — class-qualified (``ResultCache._lock``), with
``Condition`` wrappers resolved to the lock they wrap (``JobManager._wake``
*is* ``JobManager._lock``), attribute and local types chased through the
call graph's inference, and module-level locks file-qualified.  Held-lock
sets then propagate two ways:

* **down the call graph** — a function's *entry held set* is the union
  of what its callers hold at the call sites plus any ``# requires-lock:``
  annotation on its ``def`` line (PR 9's contract comments double as
  dataflow seeds);
* **through summaries** — each function's *may-acquire* set (direct
  plus transitive) adds ``held -> acquired`` edges at every call site
  made while holding something.

Findings:

* **cycles** in the acquisition-order graph (lock A held while taking
  B somewhere, B held while taking A elsewhere) — each edge inside a
  strongly-connected component is reported at its witness site;
* **self-cycles** only for non-reentrant ``threading.Lock`` (an
  ``RLock`` may legitimately re-enter; a lock whose factory is unknown
  — e.g. one-per-task dataclass locks — is given the benefit of the
  doubt, since distinct instances share a canonical name here);
* **blocking calls while holding a lock** — ``os.fsync``,
  ``time.sleep``, subprocess spawns, HTTP requests, executor
  ``.submit``/future ``.result()`` — reported once, at the direct
  blocking site, with the full held set (lexical + inherited from
  callers).  ``Condition.wait`` is exempt: it releases the lock.

Known limits (shared with the call graph): locks reached through
``getattr``/containers are invisible, and canonicalisation is
per-*class*, not per-*instance* — two instances of the same class are
one node, a may-over-approximation.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..callgraph import (CallGraph, ClassInfo, FuncKey, FunctionInfo,
                         ModuleInfo)
from ..core import Finding, Rule
from ..dataflow import fixpoint_over_functions
from ..source import dotted_name, self_attr_path

#: Dotted call names that block the calling thread.
BLOCKING_CALLS = frozenset({
    "os.fsync", "os.fdatasync", "time.sleep",
    "urllib.request.urlopen", "urlopen",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "requests.get", "requests.post", "requests.request",
    "socket.create_connection",
})

#: Attribute methods that block when invoked on executors/futures.
_BLOCKING_ATTRS = frozenset({"submit", "result", "map", "shutdown"})
_EXECUTORISH = ("executor", "pool", "future", "fut")


def _looks_lockish(attr: str) -> bool:
    return "lock" in attr.lower() or "mutex" in attr.lower()


class _LockNamer:
    """Canonical lock identities: ``{lock_id: (display, factory)}``."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.display: Dict[str, str] = {}
        self.factory: Dict[str, Optional[str]] = {}

    def _register(self, lock_id: str, display: str,
                  factory: Optional[str]) -> str:
        self.display.setdefault(lock_id, display)
        if factory is not None:
            self.factory[lock_id] = factory
        else:
            self.factory.setdefault(lock_id, None)
        return lock_id

    def class_lock(self, cls: ClassInfo, attr: str) -> Optional[str]:
        attr = cls.resolve_lock_alias(attr)
        factory = cls.lock_factory(attr)
        if factory is None and not _looks_lockish(attr):
            return None
        if factory == "Condition":
            # An unaliased Condition owns an implicit RLock.
            factory = "RLock"
        # Canonicalise on the class that defines the attribute so a
        # subclass and its base share one node.
        owner = cls
        for info in cls.mro():
            if attr in info.lock_attrs or attr in info.class_fields:
                owner = info
                break
        lock_id = f"{owner.source.rel}::{owner.name}.{attr}"
        return self._register(lock_id, f"{owner.name}.{attr}", factory)

    def module_lock(self, module: ModuleInfo, name: str) -> Optional[str]:
        factory = module.module_locks.get(name)
        if factory is None and not _looks_lockish(name):
            return None
        lock_id = f"{module.rel}::{name}"
        return self._register(lock_id, name, factory)

    def of_expr(self, expr: ast.AST, fn: Optional[FunctionInfo],
                module: Optional[ModuleInfo],
                local_types: Dict) -> Optional[str]:
        """Canonical lock id for an acquisition expression, or ``None``."""
        path = self_attr_path(expr)
        cls = self.graph.class_of(fn) if fn is not None else None
        if path is not None and cls is not None:
            if len(path) == 1:
                return self.class_lock(cls, path[0])
            if len(path) == 2:
                attr_type = cls.find_attr_type(path[0])
                if attr_type is not None:
                    owner = self.graph.classes.get(attr_type)
                    if owner is not None:
                        return self.class_lock(owner, path[1])
                return None
        if isinstance(expr, ast.Name) and module is not None:
            return self.module_lock(module, expr.id)
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name):
            typed = local_types.get(expr.value.id)
            if typed is not None:
                owner = self.graph.classes.get(typed)
                if owner is not None:
                    return self.class_lock(owner, expr.attr)
        return None

    def short(self, lock_id: str) -> str:
        return self.display.get(lock_id, lock_id)


class _FuncScan:
    """Lexical lock facts of one function."""

    __slots__ = ("fn", "acquisitions", "calls", "blocking", "requires")

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        #: ``(lock_id, lexically-held tuple, line)``.
        self.acquisitions: List[Tuple[str, Tuple[str, ...], int]] = []
        #: ``(callee key, lexically-held tuple, line)``.
        self.calls: List[Tuple[FuncKey, Tuple[str, ...], int]] = []
        #: ``(display name, lexically-held tuple, line)``.
        self.blocking: List[Tuple[str, Tuple[str, ...], int]] = []
        #: Canonicalised ``# requires-lock:`` entry set.
        self.requires: FrozenSet[str] = frozenset()


class LockOrderRule(Rule):
    id = "lock-order"
    contract = ("Locks are acquired in one global order (no cycles in "
                "the acquisition graph) and nothing blocking runs while "
                "a lock is held.")

    # -- per-function lexical scan ---------------------------------------------

    def _requires_locks(self, fn: FunctionInfo, namer: _LockNamer) \
            -> FrozenSet[str]:
        cls = namer.graph.class_of(fn)
        node = fn.node
        sig_end = node.body[0].lineno if node.body else node.lineno
        names: List[str] = []
        for line in range(node.lineno, sig_end + 1):
            names.extend(fn.source.requires_lock.get(line, ()))
        resolved: Set[str] = set()
        for name in names:
            attr = name.split(".")[-1]
            if cls is not None:
                lock_id = namer.class_lock(cls, attr)
                if lock_id is not None:
                    resolved.add(lock_id)
                    continue
            module = namer.graph.modules.get(fn.source.rel)
            if module is not None:
                lock_id = namer.module_lock(module, attr)
                if lock_id is not None:
                    resolved.add(lock_id)
        return frozenset(resolved)

    def _scan_function(self, fn: FunctionInfo, graph: CallGraph,
                       namer: _LockNamer) -> _FuncScan:
        scan = _FuncScan(fn)
        scan.requires = self._requires_locks(fn, namer)
        module = graph.modules.get(fn.source.rel)
        local_types = graph.local_types(fn)
        resolutions = {id(call): callee
                       for call, callee in graph.calls_in(fn)}

        def scan_exprs(exprs, held: Tuple[str, ...]) -> None:
            for expr in exprs:
                if expr is None or not isinstance(expr, ast.AST):
                    continue
                stack: List[ast.AST] = [expr]
                while stack:
                    node = stack.pop()
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef, ast.Lambda)):
                        continue
                    if isinstance(node, ast.Call):
                        self._scan_call(node, held, scan, namer, fn,
                                        module, local_types, resolutions)
                    stack.extend(ast.iter_child_nodes(node))

        def visit(stmts, held: Tuple[str, ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = held
                    for item in stmt.items:
                        scan_exprs([item.context_expr], inner)
                        lock_id = namer.of_expr(item.context_expr, fn,
                                                module, local_types)
                        if lock_id is not None:
                            scan.acquisitions.append(
                                (lock_id, inner, stmt.lineno))
                            if lock_id not in inner:
                                inner = inner + (lock_id,)
                    visit(stmt.body, inner)
                    continue
                for _field, value in ast.iter_fields(stmt):
                    if isinstance(value, list):
                        nested = [v for v in value if isinstance(v, ast.stmt)]
                        if nested:
                            visit(nested, held)
                        for handler in value:
                            if isinstance(handler, ast.ExceptHandler):
                                scan_exprs([handler.type], held)
                                visit(handler.body, held)
                        scan_exprs([v for v in value
                                    if isinstance(v, ast.expr)], held)
                    elif isinstance(value, ast.expr):
                        scan_exprs([value], held)

        visit(fn.node.body, ())
        return scan

    def _scan_call(self, call: ast.Call, held: Tuple[str, ...],
                   scan: _FuncScan, namer: _LockNamer, fn: FunctionInfo,
                   module, local_types, resolutions) -> None:
        func = call.func
        # Explicit ``<lock>.acquire()`` is an acquisition event.
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            lock_id = namer.of_expr(func.value, fn, module, local_types)
            if lock_id is not None:
                scan.acquisitions.append((lock_id, held, call.lineno))
                return
        blocking = self._blocking_name(call)
        if blocking is not None:
            scan.blocking.append((blocking, held, call.lineno))
        callee = resolutions.get(id(call))
        if callee is not None:
            scan.calls.append((callee.key, held, call.lineno))

    @staticmethod
    def _blocking_name(call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is not None and dotted in BLOCKING_CALLS:
            return dotted
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_ATTRS:
            receiver = dotted_name(func.value) or ""
            lowered = receiver.lower()
            if any(hint in lowered for hint in _EXECUTORISH):
                return f"{receiver}.{func.attr}"
        return None

    # -- interprocedural propagation -------------------------------------------

    @staticmethod
    def _acquire_summaries(scans: Dict[FuncKey, _FuncScan]):
        """``{fn: locks it may acquire, transitively}``."""

        def update(key, summaries):
            scan = scans[key]
            acquired: Set[str] = set(summaries[key])
            acquired.update(lock for lock, _held, _line
                            in scan.acquisitions)
            for callee, _held, _line in scan.calls:
                if callee in summaries:
                    acquired |= summaries[callee]
            return frozenset(acquired)

        return fixpoint_over_functions(scans, update)

    @staticmethod
    def _entry_held(scans: Dict[FuncKey, _FuncScan]):
        """``{fn: locks some caller may hold at entry}`` (plus its own
        ``# requires-lock:`` annotation)."""
        callers: Dict[FuncKey, List[Tuple[FuncKey, Tuple[str, ...]]]] = {
            key: [] for key in scans}
        for key, scan in scans.items():
            for callee, held, _line in scan.calls:
                if callee in callers:
                    callers[callee].append((key, held))

        def update(key, summaries):
            held: Set[str] = set(summaries[key]) | set(scans[key].requires)
            for caller, at_site in callers[key]:
                held.update(at_site)
                held |= summaries[caller]
            return frozenset(held)

        return fixpoint_over_functions(scans, update)

    # -- cycle detection -------------------------------------------------------

    @staticmethod
    def _sccs(nodes: List[str],
              edges: Dict[Tuple[str, str], Tuple]) -> List[List[str]]:
        """Tarjan's strongly-connected components, iterative."""
        adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
        for src, dst in sorted(edges):
            if src != dst:
                adjacency[src].append(dst)
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        for root in nodes:
            if root in index:
                continue
            work = [(root, 0)]
            while work:
                node, child_idx = work.pop()
                if child_idx == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                children = adjacency[node]
                for offset in range(child_idx, len(children)):
                    child = children[offset]
                    if child not in index:
                        work.append((node, offset + 1))
                        work.append((child, 0))
                        recursed = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if recursed:
                    continue
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(component))
        return sccs

    # -- reporting -------------------------------------------------------------

    def check_project(self, project) -> List[Finding]:
        graph = CallGraph.of(project)
        namer = _LockNamer(graph)
        scans: Dict[FuncKey, _FuncScan] = {}
        for fn in graph.sorted_functions():
            scans[fn.key] = self._scan_function(fn, graph, namer)

        acquires = self._acquire_summaries(scans)
        entry_held = self._entry_held(scans)

        #: ``(held lock, acquired lock) -> (rel, line, qualname)`` witness.
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        findings: List[Finding] = []

        for key in sorted(scans):
            scan = scans[key]
            fn = scan.fn
            inherited = entry_held[key]
            for lock, lexical, line in scan.acquisitions:
                full = frozenset(lexical) | inherited
                for held in full:
                    edges.setdefault((held, lock),
                                     (fn.source.rel, line, fn.qualname))
            for callee, lexical, line in scan.calls:
                full = frozenset(lexical) | inherited
                if not full:
                    continue
                for lock in acquires.get(callee, frozenset()):
                    for held in full:
                        edges.setdefault(
                            (held, lock),
                            (fn.source.rel, line, fn.qualname))
            for name, lexical, line in scan.blocking:
                full = sorted(frozenset(lexical) | inherited)
                if not full:
                    continue
                held_names = ", ".join(namer.short(lock) for lock in full)
                findings.append(self.finding(
                    fn.source, line,
                    f"blocking call `{name}` while holding "
                    f"{held_names}: move it outside the critical "
                    f"section or justify via baseline",
                ))

        # Self-cycles: re-acquiring a non-reentrant Lock deadlocks.
        for (src, dst), (rel, line, qualname) in sorted(edges.items()):
            if src != dst or namer.factory.get(src) != "Lock":
                continue
            source = self._source_for(project, rel)
            if source is None:
                continue
            findings.append(self.finding(
                source, line,
                f"non-reentrant lock {namer.short(src)} may be "
                f"re-acquired while already held (in {qualname}): "
                f"this self-deadlocks",
            ))

        # Multi-lock cycles: every edge inside an SCC is a witness.
        nodes = sorted({node for edge in edges for node in edge})
        for scc in self._sccs(nodes, edges):
            if len(scc) < 2:
                continue
            member = set(scc)
            cycle = " -> ".join(namer.short(lock) for lock in scc)
            for (src, dst), (rel, line, qualname) in sorted(edges.items()):
                if src == dst or src not in member or dst not in member:
                    continue
                source = self._source_for(project, rel)
                if source is None:
                    continue
                findings.append(self.finding(
                    source, line,
                    f"lock-order cycle: {namer.short(src)} is held "
                    f"while acquiring {namer.short(dst)} (in "
                    f"{qualname}), completing the cycle "
                    f"[{cycle} -> ...]: acquire these locks in one "
                    f"global order",
                ))
        return findings

    @staticmethod
    def _source_for(project, rel: str):
        for source in project.parsed():
            if source.rel == rel:
                return source
        return None
