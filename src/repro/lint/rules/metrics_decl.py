"""Metric/label hygiene: call sites <-> the ``DECLARED_METRICS`` table.

Metric names and label sets are an interface — dashboards, the
Prometheus endpoint, and ``scripts/bench_report.py`` all consume them by
name.  The declaration table in :mod:`repro.obs.metrics` is the single
source of truth; this project rule cross-checks every call site:

* **undeclared name** — ``metrics.counter("repro_typo_total", ...)``
  creates a series nothing ever scrapes by its intended name;
* **kind mismatch** — registering a declared counter as a gauge (the
  registry would raise at runtime, but only on the first armed run that
  reaches the site);
* **open label set** — ``.inc(...)``/``.set(...)``/``.observe(...)``
  keyword labels must *equal* the declared label set.  An extra label is
  the ``/v1/jobs/{id}``-cardinality class of bug (unbounded series); a
  missing one silently merges distinct series;
* **declared-but-unused** — table entries no call site creates.

Only literal-name call sites are checked (``registry.counter(name)``
plumbing inside the metrics module itself passes variables and is
skipped).  Var-bound metrics — ``c = metrics.counter("x", ...)`` then
``c.inc(...)`` — are resolved through single-assignment tracking; a
name rebound to two different metrics is ambiguous and skipped.

The rule silently skips projects without the registry module.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..core import Finding, Rule
from ..source import SourceFile, const_str

#: Path suffix locating the declaration table inside a scanned project.
REGISTRY_SUFFIX = "obs/metrics.py"
TABLE_NAME = "DECLARED_METRICS"

_CREATE_METHODS = frozenset({"counter", "gauge", "histogram"})
_UPDATE_METHODS = frozenset({"inc", "dec", "set", "observe"})
#: Positional value argument accepted by each update method (labels are
#: keyword-only).
_AMBIGUOUS = object()


class _Declaration:
    def __init__(self, kind: str, labels: Tuple[str, ...],
                 line: int) -> None:
        self.kind = kind
        self.labels = frozenset(labels)
        self.labels_decl = labels
        self.line = line


def _parse_table(source: SourceFile) -> Optional[Dict[str, _Declaration]]:
    """The ``DECLARED_METRICS`` literal, or ``None`` when absent."""
    if source.tree is None:
        return None
    for stmt in source.tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not (len(targets) == 1 and isinstance(targets[0], ast.Name)
                and targets[0].id == TABLE_NAME
                and isinstance(stmt.value, ast.Dict)):
            continue
        table: Dict[str, _Declaration] = {}
        for key_node, value_node in zip(stmt.value.keys, stmt.value.values):
            name = const_str(key_node) if key_node is not None else None
            if name is None \
                    or not isinstance(value_node, (ast.Tuple, ast.List)) \
                    or len(value_node.elts) != 2:
                continue
            kind = const_str(value_node.elts[0])
            labels_node = value_node.elts[1]
            if kind is None \
                    or not isinstance(labels_node, (ast.Tuple, ast.List)):
                continue
            labels = tuple(label for label in
                           (const_str(el) for el in labels_node.elts)
                           if label is not None)
            table[name] = _Declaration(kind, labels, key_node.lineno)
        return table
    return None


def _creation_name_kind(node: ast.AST) -> Optional[Tuple[str, str, int]]:
    """``(metric name, kind, line)`` when ``node`` is a literal-name
    metric-creation call, else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _CREATE_METHODS and node.args:
        name = const_str(node.args[0])
        if name is not None:
            return name, node.func.attr, node.lineno
    return None


class MetricHygieneRule(Rule):
    id = "metric-hygiene"
    contract = ("Metric call sites use names/kinds from the "
                "DECLARED_METRICS table with exactly the declared "
                "(closed) label set; every declared metric is used.")

    def check_project(self, project) -> List[Finding]:
        registry = project.find_suffix(REGISTRY_SUFFIX)
        if registry is None:
            return []
        table = _parse_table(registry)
        if table is None:
            return []
        findings: List[Finding] = []
        used: Set[str] = set()
        for source in project.parsed():
            self._check_file(source, table, used, findings)
        # Skip the unused direction on partial scans that include the
        # table but none of the call sites (e.g. a single-file run).
        if not used:
            return findings
        for name in sorted(table):
            if name not in used:
                findings.append(self.finding(
                    registry, table[name].line,
                    f"metric {name!r} is declared in {TABLE_NAME} but "
                    f"never created at any call site: dead declaration",
                ))
        return findings

    def _check_file(self, source: SourceFile,
                    table: Dict[str, _Declaration], used: Set[str],
                    findings: List[Finding]) -> None:
        # Single-assignment tracking of var-bound metrics.
        bound: Dict[str, object] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                created = _creation_name_kind(node.value)
                if created is not None:
                    var = node.targets[0].id
                    bound[var] = _AMBIGUOUS if var in bound \
                        and bound[var] != created[0] else created[0]
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            created = _creation_name_kind(node)
            if created is not None:
                name, kind, line = created
                used.add(name)
                decl = table.get(name)
                if decl is None:
                    findings.append(self.finding(
                        source, line,
                        f"metric {name!r} is not in {TABLE_NAME}: an "
                        f"undeclared name is invisible to every consumer "
                        f"scraping by declared name",
                    ))
                elif decl.kind != kind:
                    findings.append(self.finding(
                        source, line,
                        f"metric {name!r} is declared as a {decl.kind} "
                        f"but created here as a {kind}",
                    ))
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _UPDATE_METHODS:
                target = _creation_name_kind(node.func.value)
                name = target[0] if target is not None else None
                if name is None and isinstance(node.func.value, ast.Name):
                    candidate = bound.get(node.func.value.id)
                    if isinstance(candidate, str):
                        name = candidate
                decl = table.get(name) if name is not None else None
                if decl is None:
                    continue
                if any(keyword.arg is None for keyword in node.keywords):
                    continue  # **labels: dynamic, not statically checkable
                labels = frozenset(keyword.arg for keyword in node.keywords)
                if labels != decl.labels:
                    declared = ", ".join(decl.labels_decl) or "(none)"
                    got = ", ".join(sorted(labels)) or "(none)"
                    findings.append(self.finding(
                        source, node.lineno,
                        f"metric {name!r} declares the closed label set "
                        f"[{declared}] but this {node.func.attr}() call "
                        f"passes [{got}]: extra labels explode series "
                        f"cardinality, missing ones merge distinct series",
                    ))
