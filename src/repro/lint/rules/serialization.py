"""Serialization coverage: the dataclass graph under ``CompileResponse``.

Responses cross process and version boundaries (HTTP wire format, the
disk cache, the job journal), so every dataclass *reachable* from
:class:`repro.service.api.CompileResponse` must round-trip:

* it defines — or inherits from a project class that defines — both
  ``to_dict`` and ``from_dict``;
* the serialization envelope is **versioned**: each reachability root
  writes/reads a schema version (its ``to_dict``/``from_dict`` touch a
  ``*SCHEMA_VERSION`` constant or a ``"schema"`` key).  Non-root
  classes are version-covered by the envelope that embeds them.

Reachability is computed statically over class-body annotations
(``result: QLSResult`` pulls in ``QLSResult``) **and** project
subclasses (``PipelineResult(QLSResult)`` — the ``register_result_type``
type-tag dispatch means any registered subclass can appear on the
wire), and through base classes.  A reachable dataclass missing either
method, or a root missing versioning, is a finding at its ``class``
line.

The rule silently skips projects that contain no root class (fixture
runs over unrelated trees).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..core import Finding, Rule
from ..source import SourceFile, dotted_name

#: Class names whose reachable dataclass graph must round-trip.
ROOTS = ("CompileResponse",)

_VERSION_FRAGMENT = "SCHEMA_VERSION"
_SCHEMA_KEY = "schema"


class _ClassRecord:
    def __init__(self, source: SourceFile, node: ast.ClassDef,
                 is_dataclass: bool) -> None:
        self.source = source
        self.node = node
        self.name = node.name
        self.is_dataclass = is_dataclass
        self.bases = [base.id for base in node.bases
                      if isinstance(base, ast.Name)]
        self.methods: Set[str] = set()
        self.annotation_names: Set[str] = set()
        self.versioned = False
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods.add(stmt.name)
                if _mentions_version(stmt):
                    self.versioned = True
            elif isinstance(stmt, ast.AnnAssign):
                for inner in ast.walk(stmt.annotation):
                    if isinstance(inner, ast.Name):
                        self.annotation_names.add(inner.id)
                    elif isinstance(inner, ast.Constant) \
                            and isinstance(inner.value, str):
                        # Forward reference: "QLSResult".
                        self.annotation_names.add(inner.value)


def _mentions_version(method: ast.AST) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Name) and _VERSION_FRAGMENT in node.id:
            return True
        if isinstance(node, ast.Attribute) \
                and _VERSION_FRAGMENT in node.attr:
            return True
        if isinstance(node, ast.Constant) and node.value == _SCHEMA_KEY:
            return True
    return False


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target)
        if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


class SerializationRule(Rule):
    id = "serialization"
    contract = ("Every dataclass reachable from CompileResponse "
                "round-trips through versioned to_dict/from_dict.")

    roots = ROOTS

    def check_project(self, project) -> List[Finding]:
        classes: Dict[str, _ClassRecord] = {}
        subclasses: Dict[str, List[str]] = {}
        for source in project.parsed():
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    record = _ClassRecord(source, node,
                                          _is_dataclass_decorated(node))
                    classes.setdefault(node.name, record)
                    for base in record.bases:
                        subclasses.setdefault(base, []).append(node.name)
        if not any(root in classes for root in self.roots):
            return []
        reachable = self._reach(classes, subclasses)
        findings: List[Finding] = []
        for name in sorted(reachable):
            record = classes[name]
            if not record.is_dataclass:
                continue
            missing = [method for method in ("to_dict", "from_dict")
                       if not self._resolves(classes, name, method)]
            if missing:
                findings.append(self.finding(
                    record.source, record.node.lineno,
                    f"dataclass {name} is reachable from "
                    f"{'/'.join(self.roots)} but lacks "
                    f"{' and '.join(missing)}: it cannot cross the "
                    f"wire/cache/journal boundary",
                ))
            if name in self.roots and not self._versioned(classes, name):
                findings.append(self.finding(
                    record.source, record.node.lineno,
                    f"serialization root {name} writes no schema "
                    f"version: old readers cannot reject new payloads",
                ))
        return findings

    def _reach(self, classes: Dict[str, _ClassRecord],
               subclasses: Dict[str, List[str]]) -> Set[str]:
        queue = [root for root in self.roots if root in classes]
        reachable: Set[str] = set()
        while queue:
            name = queue.pop()
            if name in reachable:
                continue
            reachable.add(name)
            record = classes[name]
            neighbours = (
                [n for n in record.annotation_names if n in classes]
                + [n for n in record.bases if n in classes]
                + subclasses.get(name, [])
            )
            for neighbour in neighbours:
                if neighbour not in reachable:
                    queue.append(neighbour)
        return reachable

    def _resolves(self, classes: Dict[str, _ClassRecord], name: str,
                  method: str, seen: Optional[Set[str]] = None) -> bool:
        """Does ``name`` define or inherit (within the project)
        ``method``?"""
        seen = seen or set()
        if name in seen or name not in classes:
            return False
        seen.add(name)
        record = classes[name]
        if method in record.methods:
            return True
        return any(self._resolves(classes, base, method, seen)
                   for base in record.bases)

    def _versioned(self, classes: Dict[str, _ClassRecord], name: str,
                   seen: Optional[Set[str]] = None) -> bool:
        seen = seen or set()
        if name in seen or name not in classes:
            return False
        seen.add(name)
        record = classes[name]
        if record.versioned:
            return True
        return any(self._versioned(classes, base, seen)
                   for base in record.bases)
