"""Rule registry: every contract rule the engine runs by default."""

from __future__ import annotations

from typing import Dict, List

from ..core import Rule
from .determinism import SetIterationRule, UnseededRandomRule, WallClockRule
from .exceptsafety import ExceptionSafetyRule
from .faults_registry import FaultRegistryRule
from .lockorder import LockOrderRule
from .locks import LockDisciplineRule
from .metrics_decl import MetricHygieneRule
from .seedflow import SeedFlowRule
from .serialization import SerializationRule

#: Rule classes in documentation order (determinism, locks, registries,
#: then the interprocedural pass).
ALL_RULES = (
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
    LockDisciplineRule,
    FaultRegistryRule,
    MetricHygieneRule,
    SerializationRule,
    SeedFlowRule,
    LockOrderRule,
    ExceptionSafetyRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [rule_cls() for rule_cls in ALL_RULES]


def rules_by_id() -> Dict[str, type]:
    return {rule_cls.id: rule_cls for rule_cls in ALL_RULES}


__all__ = [
    "ALL_RULES", "default_rules", "rules_by_id",
    "SetIterationRule", "UnseededRandomRule", "WallClockRule",
    "LockDisciplineRule", "FaultRegistryRule", "MetricHygieneRule",
    "SerializationRule", "SeedFlowRule", "LockOrderRule",
    "ExceptionSafetyRule",
]
