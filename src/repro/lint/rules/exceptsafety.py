"""Exception-safety rule: manually-acquired resources are released on
every path, including the ones an exception takes.

``with`` statements are self-cleaning; this rule watches the *manual*
patterns that are not:

* ``<lock>.acquire()`` on a named lock (``self._lock.acquire()``,
  ``lock.acquire()``) — must be paired with ``.release()`` on **all**
  CFG paths out of the function, including raise edges; an early
  ``raise`` or an exception from a call between acquire and release
  leaves the lock held forever and wedges every other thread;
* ``open(...)`` / executor constructions (``ThreadPoolExecutor`` etc.)
  bound to a **local** name — must reach ``.close()`` / ``.shutdown()``
  on all paths, unless the object escapes the function (returned,
  yielded, stored on ``self``/a container, or handed to another call),
  in which case ownership moved and the rule stops tracking it.
  Assignments straight onto ``self.<attr>`` are long-lived by design
  (journal/trace handles) and are not tracked.

The analysis is a forward *may-hold* dataflow over the per-function
:class:`~repro.lint.cfg.CFG`: an acquisition **gens** its resource on
the normal out-edge only (if the acquiring statement itself raises, the
resource was never obtained); a release or escape **kills** on both
edges (covering release-then-raise lines).  A resource still held in
the state reaching ``raise_exit`` is leaked on an exception path; one
reaching ``exit`` is leaked on a normal path.  ``try/finally`` release
is modelled precisely enough that the canonical

    lock.acquire()
    try:
        ...
    finally:
        lock.release()

is clean, while the same code minus the ``try/finally`` fires.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..callgraph import walk_body
from ..cfg import CFG
from ..core import Finding, Rule
from ..dataflow import run_forward
from ..source import dotted_name

#: ``.acquire()`` resources are always tracked; these constructors are
#: tracked when bound to a local name.
_CTOR_NAMES = frozenset({
    "open", "ThreadPoolExecutor", "ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "subprocess.Popen", "Popen", "socket.socket",
})

_RELEASE_ATTRS = frozenset({"release", "close", "shutdown", "terminate",
                            "kill", "__exit__"})


def _header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The statement's own expressions — nested statement bodies (which
    are separate CFG nodes) excluded."""
    exprs: List[ast.AST] = []
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            exprs.append(value)
        elif isinstance(value, list):
            exprs.extend(v for v in value if isinstance(v, ast.expr))
            exprs.extend(item.context_expr for item in value
                         if isinstance(item, ast.withitem))
    return exprs


def _walk_exprs(exprs: List[ast.AST]):
    for expr in exprs:
        yield from walk_body(expr)


class _FunctionFacts:
    """Resources, acquire/release/escape sites of one function."""

    def __init__(self, func_node) -> None:
        self.func = func_node
        #: resource id -> first acquisition line.
        self.acquired_at: Dict[str, int] = {}
        #: resource id -> "lock" | "resource" (message wording).
        self.kind: Dict[str, str] = {}
        self._collect()

    def _collect(self) -> None:
        local_ctor_names: Set[str] = set()
        for node in walk_body(self.func):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr == "acquire":
                    rid = dotted_name(func.value)
                    if rid is not None:
                        self.acquired_at.setdefault(rid, node.lineno)
                        self.kind[rid] = "lock"
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                ctor = self._ctor_call(node.value)
                if ctor is not None:
                    name = node.targets[0].id
                    local_ctor_names.add(name)
                    self.acquired_at.setdefault(name, node.lineno)
                    self.kind.setdefault(name, "resource")

    @staticmethod
    def _ctor_call(value: ast.AST) -> Optional[ast.Call]:
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name in _CTOR_NAMES:
                    return node
        return None

    # -- per-statement effects -------------------------------------------------

    def effects(self, stmt: ast.stmt) \
            -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """``(gen, kill)`` resource sets for one CFG statement node."""
        gen: Set[str] = set()
        kill: Set[str] = set()
        exprs = _header_exprs(stmt)
        for node in _walk_exprs(exprs):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    rid = dotted_name(func.value)
                    if rid in self.acquired_at:
                        if func.attr == "acquire":
                            gen.add(rid)
                        elif func.attr in _RELEASE_ATTRS:
                            kill.add(rid)
                        else:
                            continue
                        continue
                # A tracked local passed to another call escapes (the
                # callee now owns cleanup).
                for arg in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    inner = arg.value if isinstance(arg, ast.Starred) \
                        else arg
                    if isinstance(inner, ast.Name) \
                            and inner.id in self.acquired_at \
                            and self.kind.get(inner.id) == "resource":
                        kill.add(inner.id)
        if isinstance(stmt, ast.Assign):
            ctor = self._ctor_call(stmt.value)
            if ctor is not None and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                gen.add(stmt.targets[0].id)
            # Rebinding / storing a tracked resource moves ownership.
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, (ast.Attribute, ast.Subscript)):
                        value = stmt.value
                        if isinstance(value, ast.Name) \
                                and value.id in self.acquired_at:
                            kill.add(value.id)
        if isinstance(stmt, (ast.Return, ast.Expr)):
            value = stmt.value
            targets = [value]
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                targets = [value.value]
            for target in targets:
                if target is None:
                    continue
                for node in ast.walk(target):
                    if isinstance(node, ast.Name) \
                            and node.id in self.acquired_at \
                            and self.kind.get(node.id) == "resource":
                        kill.add(node.id)
        return frozenset(gen), frozenset(kill)


class ExceptionSafetyRule(Rule):
    id = "exception-safety"
    contract = ("Locks, files, and executors acquired outside `with` "
                "are released on all paths, including exception "
                "(raise) edges.")

    def check_file(self, source) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(source, node, findings)
        return findings

    def _check_function(self, source, func_node,
                        findings: List[Finding]) -> None:
        facts = _FunctionFacts(func_node)
        if not facts.acquired_at:
            return
        cfg = CFG.build(func_node)
        effect_cache: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        for node in cfg.stmt_nodes():
            effect_cache[node.index] = facts.effects(node.stmt)

        def transfer(node, state):
            cached = effect_cache.get(node.index)
            if cached is None:
                return state, state
            gen, kill = cached
            survived = state - kill
            # Gens take effect only if the statement completes normally.
            return survived | gen, survived

        states = run_forward(cfg, transfer)
        leaked_exc = states.get(cfg.raise_exit.index, frozenset())
        leaked_exit = states.get(cfg.exit.index, frozenset())
        for rid in sorted(leaked_exc):
            kind = facts.kind.get(rid, "resource")
            findings.append(self.finding(
                source, facts.acquired_at[rid],
                f"{kind} `{rid}` acquired here may never be released "
                f"when an exception escapes `{func_node.name}`: wrap "
                f"in try/finally or use a with block",
            ))
        for rid in sorted(leaked_exit - leaked_exc):
            kind = facts.kind.get(rid, "resource")
            findings.append(self.finding(
                source, facts.acquired_at[rid],
                f"{kind} `{rid}` acquired here is not released on "
                f"every normal path out of `{func_node.name}`",
            ))
