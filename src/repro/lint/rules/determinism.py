"""Determinism rules: no unordered iteration, unseeded RNG, or wall
clock in decision paths.

Every golden in this repo pins bit-identical output for a fixed seed, so
the three classic nondeterminism leaks are contract violations:

* ``det-set-iter`` — order-sensitive consumption of an unordered
  iterable: ``for`` loops, list comprehensions, ``list()``/``tuple()``/
  ``enumerate()``/``join()`` over a ``set``/``frozenset`` expression (or
  a local variable bound to one), or over a filesystem listing
  (``glob``/``rglob``/``iterdir``/``scandir``/``listdir``), whose order
  is OS-dependent.  Wrapping in ``sorted(...)`` is the fix and is never
  flagged; genuinely order-insensitive loops carry a pragma or a
  baseline entry.
* ``det-unseeded-random`` — module-level :mod:`random` functions (the
  process-global RNG) instead of a seeded ``random.Random(seed)``
  instance; also ``from random import ...`` of those functions and
  unseeded ``numpy.random`` use.
* ``det-wallclock`` — wall-clock and entropy sources
  (``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``/
  ``today``, ``uuid.uuid1``/``uuid4``, ``os.urandom``, ``secrets.*``)
  outside the obs/serving/timing allowlist
  (:data:`WALLCLOCK_ALLOWED`).  ``time.perf_counter``/``monotonic`` are
  measurement, not identity, and are never flagged; entropy sources are
  flagged everywhere, allowlist included.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..core import Finding, Rule
from ..source import SourceFile, dotted_name

#: Calls that build a set.
_SET_CALLS = frozenset({"set", "frozenset"})
#: Methods returning a set when called on one (close enough: these names
#: are overwhelmingly set methods in practice).
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference"})
#: Methods/functions that list a directory in OS-dependent order.
_FS_METHODS = frozenset({"glob", "rglob", "iterdir", "scandir", "listdir"})
#: Wrappers whose output order mirrors their input order.
_ORDER_WRAPPERS = frozenset({"list", "tuple", "enumerate"})

#: ``random`` module attributes that are fine: seeded-RNG constructors
#: and state plumbing.
_RANDOM_OK = frozenset({"Random", "SystemRandom", "seed", "getstate",
                        "setstate"})
_NUMPY_RANDOM_OK = frozenset({"default_rng", "RandomState", "Generator",
                              "SeedSequence", "seed"})

#: Module path fragments where time-of-day reads are legitimate —
#: observability, the serving tier's timestamps/eviction/backoff, and
#: harness timing.  Entropy sources are *never* allowlisted.
WALLCLOCK_ALLOWED = (
    "repro/obs/",
    "repro/service/",
    "repro/evalx/",
    "benchmarks/",
    "scripts/",
)

#: Fully qualified call names that read the wall clock.
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
#: Fully qualified call names that read process entropy.
_ENTROPY_CALLS = frozenset({
    "uuid.uuid1", "uuid.uuid4", "os.urandom",
})


def _unordered_kind(node: ast.AST, set_vars: Dict[str, bool]) \
        -> Optional[str]:
    """Why ``node`` evaluates to an unordered iterable, or ``None``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CALLS:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS:
                return f"a set (.{func.attr}())"
            if func.attr in _FS_METHODS:
                return (f"an OS-ordered filesystem listing "
                        f"(.{func.attr}())")
    if isinstance(node, ast.Name) and set_vars.get(node.id):
        return f"a set (local {node.id!r})"
    return None


class _ScopeWalker(ast.NodeVisitor):
    """One lexical scope: tracks local names bound to set expressions
    and reports order-sensitive consumption of unordered iterables.
    Nested function scopes are walked independently (their locals are
    their own)."""

    def __init__(self, rule: "SetIterationRule", source: SourceFile,
                 findings: List[Finding]) -> None:
        self.rule = rule
        self.source = source
        self.findings = findings
        self.set_vars: Dict[str, bool] = {}

    # -- local set inference ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            self.set_vars[name] = (
                _unordered_kind(node.value, {}) is not None
                and not self._is_fs_listing(node.value)
            )

    @staticmethod
    def _is_fs_listing(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_METHODS)

    # -- consumption sites -----------------------------------------------------

    def _flag(self, node: ast.AST, how: str, kind: str) -> None:
        self.findings.append(self.rule.finding(
            self.source, node.lineno,
            f"{how} iterates over {kind}: iteration order is "
            f"nondeterministic — sort it (or pragma/baseline an "
            f"order-insensitive use)",
        ))

    def visit_For(self, node: ast.For) -> None:
        kind = _unordered_kind(node.iter, self.set_vars)
        if kind is not None:
            self._flag(node.iter, "for loop", kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for comp in node.generators:
            kind = _unordered_kind(comp.iter, self.set_vars)
            if kind is not None:
                self._flag(comp.iter, "list comprehension", kind)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee: Optional[str] = None
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_WRAPPERS:
            callee = f"{node.func.id}()"
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join":
            callee = "str.join()"
        if callee is not None and node.args:
            kind = _unordered_kind(node.args[0], self.set_vars)
            if kind is not None:
                self._flag(node, callee, kind)
        self.generic_visit(node)

    # -- scope boundaries ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        _walk_scope(self.rule, self.source, node, self.findings)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        _walk_scope(self.rule, self.source, node, self.findings)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        _walk_scope(self.rule, self.source, node, self.findings)


def _walk_scope(rule: "SetIterationRule", source: SourceFile, node,
                findings: List[Finding]) -> None:
    walker = _ScopeWalker(rule, source, findings)
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        walker.visit(stmt)


class SetIterationRule(Rule):
    id = "det-set-iter"
    contract = ("No order-sensitive iteration over sets or OS-ordered "
                "filesystem listings (sorted() it, or justify).")

    def check_file(self, source: SourceFile) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        _walk_scope(self, source, source.tree, findings)
        return findings


class UnseededRandomRule(Rule):
    id = "det-unseeded-random"
    contract = ("No process-global RNG: randomness flows through a "
                "seeded random.Random(seed) instance.")

    def check_file(self, source: SourceFile) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(alias.name for alias in node.names
                             if alias.name not in _RANDOM_OK)
                if bad:
                    findings.append(self.finding(
                        source, node.lineno,
                        f"importing module-level RNG function(s) "
                        f"{', '.join(bad)} from random: use a seeded "
                        f"random.Random(seed) instance",
                    ))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.startswith("random.") \
                        and name.split(".", 1)[1] not in _RANDOM_OK:
                    findings.append(self.finding(
                        source, node.lineno,
                        f"{name}() uses the process-global RNG: seed a "
                        f"random.Random(seed) instance instead",
                    ))
                elif (name.startswith(("np.random.", "numpy.random."))
                      and name.rsplit(".", 1)[1] not in _NUMPY_RANDOM_OK):
                    findings.append(self.finding(
                        source, node.lineno,
                        f"{name}() uses numpy's global RNG: use "
                        f"numpy.random.default_rng(seed)",
                    ))
        return findings


class WallClockRule(Rule):
    id = "det-wallclock"
    contract = ("No wall-clock or entropy reads in compile decision "
                "paths (timestamps belong to the obs/serving tier).")

    #: Path fragments where time-of-day reads are allowed.
    allowed_prefixes = WALLCLOCK_ALLOWED

    def _time_allowed(self, rel: str) -> bool:
        return any(fragment in rel for fragment in self.allowed_prefixes)

    def check_file(self, source: SourceFile) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        time_ok = self._time_allowed(source.rel)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALLCLOCK_CALLS and not time_ok:
                findings.append(self.finding(
                    source, node.lineno,
                    f"{name}() reads the wall clock in a decision-path "
                    f"module: derive the value from inputs, or move the "
                    f"timestamp to the obs/serving tier",
                ))
            elif name in _ENTROPY_CALLS or name.startswith("secrets."):
                findings.append(self.finding(
                    source, node.lineno,
                    f"{name}() draws process entropy: identities and "
                    f"keys must be content-derived (fingerprints, "
                    f"sequential ids)",
                ))
        return findings
