"""A small worklist dataflow framework for the interprocedural rules.

Two layers:

* **intra-procedural** — :func:`run_forward` / :func:`run_backward`
  iterate a transfer function over a :class:`~repro.lint.cfg.CFG` to a
  fixpoint.  States are ``frozenset`` facts with union join (*may*
  analyses — the conservative direction for every rule built here:
  a fact survives if it holds on *some* path).  Forward transfer
  functions return a **pair** ``(normal_out, exc_out)`` so a rule can
  model effects that do or do not happen when the statement raises
  (e.g. a resource acquisition does not take effect on the exception
  edge, but a release kill does).

* **inter-procedural** — :func:`fixpoint_over_functions` iterates a
  per-function summary update over the whole call graph until stable
  (deterministic sorted order, monotone-union summaries, bounded
  rounds), which is how lock-acquisition sets and seed-parameter sets
  propagate across call edges, cycles included.

Everything is deterministic: worklists are ordered by the CFG's
DFS numbering and function keys are processed sorted.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Tuple

from .cfg import CFG, CFGNode

State = FrozenSet
#: ``transfer(node, in_state) -> (normal_out, exceptional_out)``.
ForwardTransfer = Callable[[CFGNode, State], Tuple[State, State]]
#: ``transfer(node, joined_out_state) -> in_state``.
BackwardTransfer = Callable[[CFGNode, State], State]

EMPTY: State = frozenset()


def identity_transfer(node: CFGNode, state: State) -> Tuple[State, State]:
    return state, state


def run_forward(cfg: CFG, transfer: ForwardTransfer,
                entry_state: State = EMPTY) -> Dict[int, State]:
    """Forward may-analysis to fixpoint; returns ``{node.index: in-state}``.

    ``transfer`` maps a node's in-state to its ``(normal, exceptional)``
    out-states; successors join by union.
    """
    in_states: Dict[int, State] = {node.index: EMPTY for node in cfg.nodes}
    in_states[cfg.entry.index] = entry_state
    worklist = deque(sorted(node.index for node in cfg.nodes))
    by_index = {node.index: node for node in cfg.nodes}
    queued = set(worklist)
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        node = by_index[index]
        state = in_states.get(index, EMPTY)
        normal_out, exc_out = transfer(node, state)
        for succ, out in [(succ, normal_out) for succ in node.succs] + \
                         [(succ, exc_out) for succ in node.exc_succs]:
            merged = in_states.get(succ.index, EMPTY) | out
            if merged != in_states.get(succ.index, EMPTY):
                in_states[succ.index] = merged
                if succ.index not in queued:
                    queued.add(succ.index)
                    worklist.append(succ.index)
    return in_states


def run_backward(cfg: CFG, transfer: BackwardTransfer,
                 exit_state: State = EMPTY) -> Dict[int, State]:
    """Backward may-analysis; returns ``{node.index: in-state}`` where a
    node's in-state is ``transfer(node, union of successor in-states)``.
    Both edge kinds are joined (a fact needed on *any* outgoing path is
    needed here)."""
    preds: Dict[int, list] = {node.index: [] for node in cfg.nodes}
    for node in cfg.nodes:
        for succ in node.succs + node.exc_succs:
            preds[succ.index].append(node)
    in_states: Dict[int, State] = {node.index: EMPTY for node in cfg.nodes}
    in_states[cfg.exit.index] = transfer(cfg.exit, exit_state)
    in_states[cfg.raise_exit.index] = transfer(cfg.raise_exit, exit_state)
    worklist = deque(sorted(node.index for node in cfg.nodes))
    by_index = {node.index: node for node in cfg.nodes}
    queued = set(worklist)
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        node = by_index[index]
        joined: State = EMPTY
        for succ in node.succs + node.exc_succs:
            joined |= in_states.get(succ.index, EMPTY)
        if node is cfg.exit or node is cfg.raise_exit:
            joined |= exit_state
        computed = transfer(node, joined)
        if computed != in_states.get(node.index, EMPTY):
            in_states[node.index] = computed
            for pred in preds[node.index]:
                if pred.index not in queued:
                    queued.add(pred.index)
                    worklist.append(pred.index)
    return in_states


def fixpoint_over_functions(keys, update, max_rounds: int = 50):
    """Iterate ``update(key, summaries) -> frozenset`` over every key
    until no summary changes (or ``max_rounds``, a safety bound far
    above any real call-graph depth).  Summaries must grow
    monotonically for termination; keys are processed sorted so runs
    are deterministic.  Returns ``{key: summary}``."""
    keys = sorted(keys)
    summaries: Dict[object, FrozenSet] = {key: frozenset() for key in keys}
    for _ in range(max_rounds):
        changed = False
        for key in keys:
            new = update(key, summaries)
            if new != summaries[key]:
                summaries[key] = new
                changed = True
        if not changed:
            break
    return summaries
