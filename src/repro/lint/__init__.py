"""Contract linter for this repo: AST-based static analysis.

The goldens pin *behaviour*; :mod:`repro.lint` pins the *conventions*
that keep the behaviour pinned — determinism of decision paths, lock
discipline in the serving stack, and the declaration registries for
fault sites and metrics.  Run it as ``python -m repro.lint [paths]``;
see the README "Static analysis" section for the rule table, pragma
grammar, and baseline workflow.
"""

from .baseline import DEFAULT_BASELINE, Baseline, BaselineEntry
from .callgraph import CallGraph, ClassInfo, FunctionInfo, ModuleInfo
from .cfg import CFG, CFGNode
from .core import Finding, Project, Rule
from .dataflow import fixpoint_over_functions, run_backward, run_forward
from .engine import Engine, LintResult, discover_files
from .rules import ALL_RULES, default_rules, rules_by_id
from .source import SourceFile

__all__ = [
    "ALL_RULES", "Baseline", "BaselineEntry", "CFG", "CFGNode",
    "CallGraph", "ClassInfo", "DEFAULT_BASELINE", "Engine", "Finding",
    "FunctionInfo", "LintResult", "ModuleInfo", "Project", "Rule",
    "SourceFile", "default_rules", "discover_files",
    "fixpoint_over_functions", "run_backward", "run_forward",
    "rules_by_id",
]
