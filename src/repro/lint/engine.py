"""The lint engine: file discovery, rule execution, suppression.

The engine owns everything rules should not have to think about:

* **discovery** — arguments are files or directories; directories are
  walked recursively for ``*.py`` in sorted order (``__pycache__`` and
  hidden directories skipped), so runs are deterministic;
* **parse errors** — a file that does not parse yields one
  ``parse-error`` finding and is excluded from every rule;
* **suppression** — ``# repro-lint: disable=...`` pragmas are applied
  here, after rules report, so rules stay suppression-oblivious;
* **ordering** — findings come back sorted by ``(path, line, rule)``.

Baseline subtraction is a separate concern (:mod:`repro.lint.baseline`)
applied by the CLI on top of the engine result.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .core import Finding, Project, Rule
from .rules import default_rules
from .source import SourceFile

#: Pseudo-rule id for files that fail to parse.
PARSE_ERROR_RULE = "parse-error"

_SKIP_DIRS = frozenset({"__pycache__"})


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths``, deterministic order, no duplicates."""
    files: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                candidate for candidate in path.rglob("*.py")
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in candidate.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


class LintResult:
    """Everything one engine run produced."""

    def __init__(self, project: Project, findings: List[Finding],
                 suppressed: List[Finding],
                 elapsed_seconds: float,
                 rule_seconds: Optional[Dict[str, float]] = None) -> None:
        self.project = project
        self.findings = findings
        self.suppressed = suppressed
        self.elapsed_seconds = elapsed_seconds
        #: Wall-clock seconds spent per rule id (check_file +
        #: check_project), for the benchmark record.
        self.rule_seconds: Dict[str, float] = rule_seconds or {}

    def __repr__(self) -> str:
        return (f"LintResult({len(self.project)} files, "
                f"{len(self.findings)} findings, "
                f"{len(self.suppressed)} suppressed)")


class Engine:
    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 root: Optional[Path] = None) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.root = root if root is not None else Path.cwd()

    # -- running ---------------------------------------------------------------

    def run_paths(self, paths: Sequence[Path],
                  focus: Optional[Set[str]] = None) -> LintResult:
        files = discover_files(paths)
        sources = [SourceFile.load(path, self.root) for path in files]
        return self.run_sources(sources, focus=focus)

    def run_sources(self, sources: Iterable[SourceFile],
                    focus: Optional[Set[str]] = None) -> LintResult:
        """Run every rule over ``sources``.

        ``focus`` (``--changed``) restricts *reporting* to those rels:
        the whole tree is still parsed and project-wide rules still see
        every file — the call graph must stay complete for the
        interprocedural rules to be sound — but file-local rules only
        run on focus files, and findings outside the focus set are
        dropped.
        """
        started = time.perf_counter()
        project = Project(list(sources))

        def in_focus(rel: str) -> bool:
            return focus is None or rel in focus

        raw: List[Finding] = []
        for source in project:
            if source.parse_error is not None and in_focus(source.rel):
                exc = source.parse_error
                raw.append(Finding(
                    rule=PARSE_ERROR_RULE, path=source.rel,
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                ))
        rule_seconds: Dict[str, float] = {}
        for rule in self.rules:
            rule_started = time.perf_counter()
            collected: List[Finding] = []
            for source in project:
                if source.parse_error is None and in_focus(source.rel):
                    collected.extend(rule.check_file(source))
            collected.extend(rule.check_project(project))
            rule_seconds[rule.id] = rule_seconds.get(rule.id, 0.0) + \
                time.perf_counter() - rule_started
            raw.extend(finding for finding in collected
                       if in_focus(finding.path))
        findings: List[Finding] = []
        suppressed: List[Finding] = []
        by_rel = {source.rel: source for source in project}
        for finding in sorted(raw, key=Finding.sort_key):
            source = by_rel.get(finding.path)
            if source is not None and finding.rule != PARSE_ERROR_RULE \
                    and source.is_suppressed(finding.rule, finding.line):
                suppressed.append(finding)
            else:
                findings.append(finding)
        elapsed = time.perf_counter() - started
        return LintResult(project, findings, suppressed, elapsed,
                          rule_seconds=rule_seconds)
