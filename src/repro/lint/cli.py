"""``python -m repro.lint``: the contract linter's command line.

Exit codes: ``0`` clean (all findings baselined or none), ``1``
unbaselined findings, ``2`` usage error.  ``--format json`` emits a
machine-readable report; ``--bench-json`` additionally writes a
``BENCH_*.json``-shaped timing record so ``scripts/bench_report.py``
tracks analyzer cost alongside the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from .baseline import DEFAULT_BASELINE, Baseline
from .engine import Engine
from .rules import default_rules, rules_by_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Contract linter: determinism, lock discipline, and "
                    "registry consistency for this repo.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--root", type=Path, default=None,
                        help="project root for relative paths and the "
                             "default baseline (default: cwd)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<root>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, baseline ignored")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="absorb current findings into a baseline "
                             "file at PATH and exit 0")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--bench-json", type=Path, default=None,
                        metavar="PATH",
                        help="write a BENCH-shaped timing record to PATH")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="BASE",
                        help="report only on files changed vs the git "
                             "base (default HEAD) plus untracked files; "
                             "the full tree is still parsed so the "
                             "interprocedural rules stay sound; falls "
                             "back to the full tree when git is "
                             "unavailable")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline file without entries "
                             "that no longer match any finding")
    parser.add_argument("--fail-stale", action="store_true",
                        help="exit 1 when the baseline has stale "
                             "entries (CI hygiene gate)")
    return parser


def changed_rels(root: Path, base: str) -> Optional[Set[str]]:
    """Relative posix paths of ``*.py`` files changed vs ``base`` plus
    untracked ones, or ``None`` when git cannot answer (not a checkout,
    git missing, unknown base)."""
    try:
        diff = subprocess.run(
            ["git", "-C", str(root), "diff", "--name-only", base, "--"],
            capture_output=True, text=True, timeout=30)
        untracked = subprocess.run(
            ["git", "-C", str(root), "ls-files", "--others",
             "--exclude-standard"],
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.SubprocessError):
        return None
    if diff.returncode != 0 or untracked.returncode != 0:
        return None
    rels: Set[str] = set()
    for line in diff.stdout.splitlines() + untracked.stdout.splitlines():
        line = line.strip()
        if line.endswith(".py"):
            rels.add(Path(line).as_posix())
    return rels


def _select_rules(spec: Optional[str]) -> List[object]:
    if spec is None:
        return default_rules()
    known = rules_by_id()
    selected = []
    for rule_id in (part.strip() for part in spec.split(",")):
        if not rule_id:
            continue
        if rule_id not in known:
            raise SystemExit(
                f"error: unknown rule {rule_id!r} "
                f"(known: {', '.join(sorted(known))})")
        selected.append(known[rule_id]())
    if not selected:
        raise SystemExit("error: --rules selected nothing")
    return selected


def _render_text(unbaselined, absorbed, stale, result, out,
                 fail_stale: bool = False) -> None:
    for finding in unbaselined:
        print(finding.render(), file=out)
    for entry in stale:
        severity = "error" if fail_stale else "note"
        print(f"{severity}: stale baseline entry [{entry.rule}] "
              f"{entry.file}: {entry.context!r} no longer matches "
              f"anything — prune it (--prune-baseline)", file=out)
    failed = bool(unbaselined) or (fail_stale and bool(stale))
    verdict = "clean" if not failed else "FAILED"
    print(f"repro.lint: {len(result.project)} files, "
          f"{len(unbaselined)} finding(s), {len(absorbed)} baselined, "
          f"{len(result.suppressed)} pragma-suppressed "
          f"[{result.elapsed_seconds:.2f}s] -> {verdict}", file=out)


def main(argv: Optional[Sequence[str]] = None,
         out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
        rules = _select_rules(options.rules)
    except SystemExit as exc:
        # argparse exits 2 on usage errors already; normalize ours too.
        code = exc.code
        if isinstance(code, str):
            print(code, file=sys.stderr)
            return 2
        return 2 if code else int(code or 0)

    if options.list_rules:
        for rule in rules:
            print(f"{rule.id:>22}  {rule.contract}", file=out)
        return 0

    if options.prune_baseline and options.no_baseline:
        print("error: --prune-baseline conflicts with --no-baseline",
              file=sys.stderr)
        return 2
    if options.prune_baseline and options.changed is not None:
        # A focused run cannot tell stale from merely-out-of-focus.
        print("error: --prune-baseline needs a full run, not --changed",
              file=sys.stderr)
        return 2

    root = (options.root if options.root is not None else Path.cwd())
    focus = None
    if options.changed is not None:
        focus = changed_rels(root, options.changed)
        if focus is None:
            print("repro.lint: git unavailable for --changed, "
                  "linting the full tree", file=sys.stderr)
    engine = Engine(rules=rules, root=root)
    # Relative paths are rooted at --root, so `--root /repo src` works
    # from anywhere (and is a no-op for the default root=cwd case).
    result = engine.run_paths([
        path if path.is_absolute() else root / path
        for path in (Path(raw) for raw in options.paths)],
        focus=focus)

    if options.write_baseline is not None:
        Baseline.from_findings(result.findings).dump(options.write_baseline)
        print(f"repro.lint: wrote {len(result.findings)} finding(s) to "
              f"{options.write_baseline} — fill in the justifications",
              file=out)
        return 0

    baseline_path = options.baseline if options.baseline is not None \
        else root / DEFAULT_BASELINE
    if options.no_baseline:
        baseline = Baseline()
    else:
        baseline = Baseline.load_or_empty(baseline_path)
    unbaselined, absorbed, stale = baseline.split(result.findings)
    if focus is not None:
        # Out-of-focus findings were dropped before baseline matching,
        # so "stale" is meaningless on a focused run.
        stale = []

    if options.prune_baseline and stale:
        keep = {id(entry) for entry in stale}
        baseline.entries = [entry for entry in baseline.entries
                            if id(entry) not in keep]
        baseline.dump(baseline_path)
        print(f"repro.lint: pruned {len(keep)} stale entr"
              f"{'y' if len(keep) == 1 else 'ies'} from "
              f"{baseline_path}", file=out)
        stale = []

    rule_seconds = {rule_id: round(seconds, 4) for rule_id, seconds
                    in sorted(result.rule_seconds.items())}
    if options.bench_json is not None:
        options.bench_json.write_text(json.dumps({
            "bench": "lint",
            "files": len(result.project),
            "findings": len(unbaselined),
            "baselined": len(absorbed),
            "suppressed": len(result.suppressed),
            "elapsed_seconds": round(result.elapsed_seconds, 4),
            "rule_seconds": rule_seconds,
        }, indent=2) + "\n", encoding="utf-8")

    failed = bool(unbaselined) or (options.fail_stale and bool(stale))
    if options.format == "json":
        print(json.dumps({
            "files": len(result.project),
            "clean": not failed,
            "elapsed_seconds": round(result.elapsed_seconds, 4),
            "rule_seconds": rule_seconds,
            "findings": [finding.to_dict() for finding in unbaselined],
            "baselined": [finding.to_dict() for finding in absorbed],
            "stale_baseline_entries": [entry.to_dict() for entry in stale],
        }, indent=2), file=out)
    else:
        _render_text(unbaselined, absorbed, stale, result, out,
                     fail_stale=options.fail_stale)
    return 1 if failed else 0
