"""``python -m repro.lint``: the contract linter's command line.

Exit codes: ``0`` clean (all findings baselined or none), ``1``
unbaselined findings, ``2`` usage error.  ``--format json`` emits a
machine-readable report; ``--bench-json`` additionally writes a
``BENCH_*.json``-shaped timing record so ``scripts/bench_report.py``
tracks analyzer cost alongside the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import DEFAULT_BASELINE, Baseline
from .engine import Engine
from .rules import default_rules, rules_by_id


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Contract linter: determinism, lock discipline, and "
                    "registry consistency for this repo.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--root", type=Path, default=None,
                        help="project root for relative paths and the "
                             "default baseline (default: cwd)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<root>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, baseline ignored")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="absorb current findings into a baseline "
                             "file at PATH and exit 0")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--bench-json", type=Path, default=None,
                        metavar="PATH",
                        help="write a BENCH-shaped timing record to PATH")
    return parser


def _select_rules(spec: Optional[str]) -> List[object]:
    if spec is None:
        return default_rules()
    known = rules_by_id()
    selected = []
    for rule_id in (part.strip() for part in spec.split(",")):
        if not rule_id:
            continue
        if rule_id not in known:
            raise SystemExit(
                f"error: unknown rule {rule_id!r} "
                f"(known: {', '.join(sorted(known))})")
        selected.append(known[rule_id]())
    if not selected:
        raise SystemExit("error: --rules selected nothing")
    return selected


def _render_text(unbaselined, absorbed, stale, result, out) -> None:
    for finding in unbaselined:
        print(finding.render(), file=out)
    for entry in stale:
        print(f"note: stale baseline entry [{entry.rule}] {entry.file}: "
              f"{entry.context!r} no longer matches anything — prune it",
              file=out)
    verdict = "clean" if not unbaselined else "FAILED"
    print(f"repro.lint: {len(result.project)} files, "
          f"{len(unbaselined)} finding(s), {len(absorbed)} baselined, "
          f"{len(result.suppressed)} pragma-suppressed "
          f"[{result.elapsed_seconds:.2f}s] -> {verdict}", file=out)


def main(argv: Optional[Sequence[str]] = None,
         out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
        rules = _select_rules(options.rules)
    except SystemExit as exc:
        # argparse exits 2 on usage errors already; normalize ours too.
        code = exc.code
        if isinstance(code, str):
            print(code, file=sys.stderr)
            return 2
        return 2 if code else int(code or 0)

    if options.list_rules:
        for rule in rules:
            print(f"{rule.id:>22}  {rule.contract}", file=out)
        return 0

    root = (options.root if options.root is not None else Path.cwd())
    engine = Engine(rules=rules, root=root)
    # Relative paths are rooted at --root, so `--root /repo src` works
    # from anywhere (and is a no-op for the default root=cwd case).
    result = engine.run_paths([
        path if path.is_absolute() else root / path
        for path in (Path(raw) for raw in options.paths)])

    if options.write_baseline is not None:
        Baseline.from_findings(result.findings).dump(options.write_baseline)
        print(f"repro.lint: wrote {len(result.findings)} finding(s) to "
              f"{options.write_baseline} — fill in the justifications",
              file=out)
        return 0

    if options.no_baseline:
        baseline = Baseline()
    else:
        baseline_path = options.baseline if options.baseline is not None \
            else root / DEFAULT_BASELINE
        baseline = Baseline.load_or_empty(baseline_path)
    unbaselined, absorbed, stale = baseline.split(result.findings)

    if options.bench_json is not None:
        options.bench_json.write_text(json.dumps({
            "bench": "lint",
            "files": len(result.project),
            "findings": len(unbaselined),
            "baselined": len(absorbed),
            "suppressed": len(result.suppressed),
            "elapsed_seconds": round(result.elapsed_seconds, 4),
        }, indent=2) + "\n", encoding="utf-8")

    if options.format == "json":
        print(json.dumps({
            "files": len(result.project),
            "clean": not unbaselined,
            "elapsed_seconds": round(result.elapsed_seconds, 4),
            "findings": [finding.to_dict() for finding in unbaselined],
            "baselined": [finding.to_dict() for finding in absorbed],
            "stale_baseline_entries": [entry.to_dict() for entry in stale],
        }, indent=2), file=out)
    else:
        _render_text(unbaselined, absorbed, stale, result, out)
    return 1 if unbaselined else 0
