"""Project-wide call graph over the :class:`~repro.lint.core.Project`.

The interprocedural rules (seed-flow, lock-order) need to follow a call
from its site to the function that runs — across files.  This module
builds that map **statically and conservatively** from the parsed
sources:

* every module-level function and every method of every class gets a
  :class:`FunctionInfo`, keyed ``(rel, class name or "", func name)``;
* imports are resolved within the linted file set (``import a.b as x``,
  ``from a.b import c``, relative imports), so ``x.f()`` finds
  ``a/b.py::f``;
* ``self.method()`` resolves through the class and its bases (same-file
  or imported), ``ClassName(...)`` resolves to ``ClassName.__init__``;
* light type inference: ``self.attr = ClassName(...)`` in a constructor
  types the attribute, and annotated parameters (``cache: ResultCache``)
  type locals — so ``self.journal.record_submit()`` and
  ``self.registry._lock`` resolve to the class that owns them.

Known limits (documented in the README): dynamic dispatch through
``getattr``/dicts of callables, monkey-patching, ``*args``
re-forwarding, and decorators that replace the function are all
invisible — an unresolved call simply contributes nothing, which keeps
every rule built on top of this graph *may*-style conservative about
resolution (never inventing an edge) rather than complete.

Nested functions and lambdas are deliberately **not** indexed as call
targets and their bodies are excluded from the enclosing function's
facts (:func:`walk_body`): a closure runs later, in a context (and under
locks) the enclosing frame no longer controls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .source import SourceFile, dotted_name, self_attr_path

#: ``threading`` factory names that create a lock-like object.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                            "BoundedSemaphore"})

FuncKey = Tuple[str, str, str]
ClassKey = Tuple[str, str]


def walk_body(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` over ``node`` that does *not* descend into nested
    ``def``/``lambda`` subtrees (their bodies run later, elsewhere).
    ``node`` itself is yielded first, even if it is a function."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def module_name_for(rel: str) -> Optional[str]:
    """Dotted import name for a file path (``src/`` stripped,
    ``__init__`` collapsed onto the package), or ``None``."""
    if not rel.endswith(".py"):
        return None
    parts = rel[:-3].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


class FunctionInfo:
    """One statically-known function or method."""

    __slots__ = ("key", "source", "node", "class_name", "name", "params",
                 "param_defaults")

    def __init__(self, source: SourceFile, node, class_name: str) -> None:
        self.source = source
        self.node = node
        self.class_name = class_name
        self.name = node.name
        self.key: FuncKey = (source.rel, class_name, node.name)
        args = node.args
        names = [arg.arg for arg in args.posonlyargs + args.args]
        if class_name and names and names[0] in ("self", "cls"):
            names = names[1:]
        kwonly = [arg.arg for arg in args.kwonlyargs]
        #: Parameter names, ``self`` stripped, keyword-only included.
        self.params: List[str] = names + kwonly
        #: ``{param: default expr}`` for parameters that have one.
        self.param_defaults: Dict[str, ast.AST] = {}
        pos_defaults = args.defaults
        for arg_name, default in zip(names[len(names) - len(pos_defaults):],
                                     pos_defaults):
            self.param_defaults[arg_name] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self.param_defaults[arg.arg] = default

    @property
    def qualname(self) -> str:
        prefix = f"{self.class_name}." if self.class_name else ""
        return f"{prefix}{self.name}"

    def bind_args(self, call: ast.Call) -> List[Tuple[str, ast.AST]]:
        """``(param, argument expr)`` pairs for ``call`` — positional by
        position, keywords by name; ``*args``/``**kwargs`` skipped."""
        bound: List[Tuple[str, ast.AST]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(self.params):
                bound.append((self.params[index], arg))
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in self.params:
                bound.append((keyword.arg, keyword.value))
        return bound

    def __repr__(self) -> str:
        return f"FunctionInfo({self.source.rel}::{self.qualname})"


class ClassInfo:
    """One statically-known class: methods, bases, typed attributes,
    lock attributes and Condition aliases."""

    __slots__ = ("key", "source", "node", "name", "base_exprs", "bases",
                 "methods", "attr_types", "lock_attrs", "lock_aliases",
                 "class_fields", "is_dataclass", "_mro")

    def __init__(self, source: SourceFile, node: ast.ClassDef) -> None:
        self.source = source
        self.node = node
        self.name = node.name
        self.key: ClassKey = (source.rel, node.name)
        self.base_exprs = list(node.bases)
        self.bases: List["ClassInfo"] = []  # resolved by CallGraph
        self.methods: Dict[str, FunctionInfo] = {}
        #: ``self.attr`` -> ClassKey, from ctor assigns / annotations.
        self.attr_types: Dict[str, ClassKey] = {}
        #: lock-ish attr -> factory name (``Lock``, ``RLock``, ...).
        self.lock_attrs: Dict[str, str] = {}
        #: Condition alias: ``self._wake = Condition(self._lock)``.
        self.lock_aliases: Dict[str, str] = {}
        #: class-level field -> value expr (dataclass fields, constants).
        self.class_fields: Dict[str, Optional[ast.AST]] = {}
        self.is_dataclass = any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
            or (isinstance(dec, ast.Call) and (
                (isinstance(dec.func, ast.Name)
                 and dec.func.id == "dataclass")
                or (isinstance(dec.func, ast.Attribute)
                    and dec.func.attr == "dataclass")))
            for dec in node.decorator_list)
        self._mro: Optional[List["ClassInfo"]] = None

    def mro(self) -> List["ClassInfo"]:
        """This class followed by its resolved bases, DFS, no repeats."""
        if self._mro is None:
            order: List[ClassInfo] = []
            seen: Set[ClassKey] = set()
            stack: List[ClassInfo] = [self]
            while stack:
                info = stack.pop(0)
                if info.key in seen:
                    continue
                seen.add(info.key)
                order.append(info)
                stack.extend(info.bases)
            self._mro = order
        return self._mro

    def find_method(self, name: str) -> Optional[FunctionInfo]:
        for info in self.mro():
            if name in info.methods:
                return info.methods[name]
        return None

    def find_attr_type(self, attr: str) -> Optional[ClassKey]:
        for info in self.mro():
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def lock_factory(self, attr: str) -> Optional[str]:
        for info in self.mro():
            if attr in info.lock_attrs:
                return info.lock_attrs[attr]
        return None

    def resolve_lock_alias(self, attr: str) -> str:
        """Follow Condition-wrapping aliases to the canonical lock attr
        (``_wake`` -> ``_lock``), bounded against alias cycles."""
        seen = {attr}
        for info in self.mro():
            while attr in info.lock_aliases:
                target = info.lock_aliases[attr]
                if target in seen:
                    break
                seen.add(target)
                attr = target
        return attr

    def __repr__(self) -> str:
        return f"ClassInfo({self.source.rel}::{self.name})"


class ModuleInfo:
    """One file's namespace: functions, classes, imports, module locks."""

    __slots__ = ("source", "rel", "dotted", "functions", "classes",
                 "imports", "module_assigns", "module_locks")

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.rel = source.rel
        self.dotted = module_name_for(source.rel)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: local name -> ("module", dotted) | ("symbol", dotted, name)
        self.imports: Dict[str, Tuple[str, ...]] = {}
        #: module-level ``NAME = expr`` (last assignment wins).
        self.module_assigns: Dict[str, ast.AST] = {}
        #: module-level lock name -> factory name.
        self.module_locks: Dict[str, str] = {}


def _call_factory_name(value: ast.AST) -> Optional[str]:
    """``Lock`` for ``threading.Lock()`` / ``Lock()``, else ``None``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else None
    return name if name in LOCK_FACTORIES else None


def _first_class_call(value: ast.AST) -> Iterator[ast.Call]:
    """Candidate constructor calls inside ``value`` (handles ternaries:
    ``A(x) if flag else other`` yields ``A(x)``)."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            yield node


class CallGraph:
    """Functions, classes, and call resolution over one project."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_dotted: Dict[str, ModuleInfo] = {}
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        self.classes: Dict[ClassKey, ClassInfo] = {}
        for source in sources:
            if source.tree is None:
                continue
            module = self._index_module(source)
            self.modules[source.rel] = module
            if module.dotted is not None:
                self.by_dotted.setdefault(module.dotted, module)
        for module in self.modules.values():
            self._resolve_bases(module)
        for module in self.modules.values():
            for cls in module.classes.values():
                self._infer_attr_types(module, cls)
        self._calls_cache: Dict[FuncKey, List[Tuple[ast.Call,
                                Optional[FunctionInfo]]]] = {}

    @classmethod
    def of(cls, project) -> "CallGraph":
        """The project's call graph, built once and cached on it."""
        graph = getattr(project, "_callgraph", None)
        if graph is None:
            graph = cls(project.parsed())
            project._callgraph = graph
        return graph

    # -- indexing --------------------------------------------------------------

    def _index_module(self, source: SourceFile) -> ModuleInfo:
        module = ModuleInfo(source)
        for stmt in source.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    module.imports[local] = ("module", dotted)
            elif isinstance(stmt, ast.ImportFrom):
                base = self._from_base(module, stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = ("symbol", base, alias.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(source, stmt, "")
                module.functions[stmt.name] = info
                self.functions[info.key] = info
            elif isinstance(stmt, ast.ClassDef):
                cls = self._index_class(source, stmt)
                module.classes[stmt.name] = cls
                self.classes[cls.key] = cls
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                module.module_assigns[name] = stmt.value
                factory = _call_factory_name(stmt.value)
                if factory is not None:
                    module.module_locks[name] = factory
        return module

    @staticmethod
    def _from_base(module: ModuleInfo, stmt: ast.ImportFrom) \
            -> Optional[str]:
        """The absolute dotted module a ``from X import ...`` names."""
        if not stmt.level:
            return stmt.module
        if module.dotted is None:
            return None
        parts = module.dotted.split(".")
        # ``from . import x`` in package module a.b -> package a.
        drop = stmt.level if not module.rel.endswith("__init__.py") \
            else stmt.level - 1
        if drop > 0:
            parts = parts[:-drop] if drop <= len(parts) else []
        if stmt.module:
            parts = parts + stmt.module.split(".")
        return ".".join(parts) if parts else None

    def _index_class(self, source: SourceFile,
                     node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(source, node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(source, stmt, node.name)
                cls.methods[stmt.name] = info
                self.functions[info.key] = info
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                cls.class_fields[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.class_fields[target.id] = stmt.value
                        factory = _call_factory_name(stmt.value)
                        if factory is not None:
                            cls.lock_attrs[target.id] = factory
        # Lock attributes / aliases from every method (``__init__`` and
        # lazy creators alike).
        for method in cls.methods.values():
            for inner in walk_body(method.node):
                if not isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = inner.targets if isinstance(inner, ast.Assign) \
                    else [inner.target]
                value = inner.value
                if value is None:
                    continue
                for target in targets:
                    path = self_attr_path(target)
                    if path is None or len(path) != 1:
                        continue
                    factory = _call_factory_name(value)
                    if factory is None:
                        continue
                    cls.lock_attrs[path[0]] = factory
                    if factory == "Condition" and isinstance(value, ast.Call) \
                            and value.args:
                        wrapped = self_attr_path(value.args[0])
                        if wrapped is not None and len(wrapped) == 1:
                            cls.lock_aliases[path[0]] = wrapped[0]
        return cls

    def _resolve_bases(self, module: ModuleInfo) -> None:
        for cls in module.classes.values():
            for base in cls.base_exprs:
                resolved = self._resolve_class_expr(base, module)
                if resolved is not None:
                    cls.bases.append(resolved)

    def _infer_attr_types(self, module: ModuleInfo, cls: ClassInfo) -> None:
        """``self.attr = ClassName(...)`` (incl. inside ternaries) and
        annotated ``self.attr: ClassName`` type the attribute."""
        for method in cls.methods.values():
            for inner in walk_body(method.node):
                if isinstance(inner, ast.AnnAssign) and inner.annotation:
                    path = self_attr_path(inner.target)
                    if path is not None and len(path) == 1:
                        typed = self._resolve_annotation(
                            inner.annotation, module)
                        if typed is not None:
                            cls.attr_types.setdefault(path[0], typed.key)
                    if inner.value is None:
                        continue
                    targets: List[ast.AST] = [inner.target]
                    value = inner.value
                elif isinstance(inner, ast.Assign):
                    targets = list(inner.targets)
                    value = inner.value
                else:
                    continue
                for target in targets:
                    path = self_attr_path(target)
                    if path is None or len(path) != 1:
                        continue
                    for call in _first_class_call(value):
                        resolved = self._resolve_class_expr(call.func,
                                                            module)
                        if resolved is not None:
                            cls.attr_types.setdefault(path[0], resolved.key)
                            break

    # -- resolution ------------------------------------------------------------

    def _module_for(self, dotted: str) -> Optional[ModuleInfo]:
        return self.by_dotted.get(dotted)

    def _resolve_symbol(self, module: ModuleInfo, name: str):
        """``("func", info) | ("class", info) | ("module", ModuleInfo)``
        for a bare name in ``module``'s namespace, or ``None``."""
        if name in module.functions:
            return ("func", module.functions[name])
        if name in module.classes:
            return ("class", module.classes[name])
        binding = module.imports.get(name)
        if binding is None:
            return None
        if binding[0] == "module":
            target = self._module_for(binding[1])
            return ("module", target) if target is not None else None
        _, base, symbol = binding
        submodule = self._module_for(f"{base}.{symbol}")
        if submodule is not None:
            return ("module", submodule)
        target = self._module_for(base)
        if target is None:
            return None
        if symbol in target.functions:
            return ("func", target.functions[symbol])
        if symbol in target.classes:
            return ("class", target.classes[symbol])
        # One level of re-export (``from .qls import LightSabre`` where
        # qls/__init__ itself imported it).
        inner = target.imports.get(symbol)
        if inner is not None and inner[0] == "symbol":
            deeper = self._module_for(inner[1])
            if deeper is not None:
                if inner[2] in deeper.functions:
                    return ("func", deeper.functions[inner[2]])
                if inner[2] in deeper.classes:
                    return ("class", deeper.classes[inner[2]])
        return None

    def _resolve_class_expr(self, expr: ast.AST,
                            module: ModuleInfo) -> Optional[ClassInfo]:
        """A class named by ``Name``/``mod.Class`` chains, incl. string
        annotations like ``"MetricsRegistry"``."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            name = expr.value.strip()
            if name.isidentifier():
                resolved = self._resolve_symbol(module, name)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
            return None
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        resolved = self._resolve_symbol(module, parts[0])
        for part in parts[1:]:
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "module":
                if part in target.classes:
                    resolved = ("class", target.classes[part])
                elif part in target.functions:
                    resolved = ("func", target.functions[part])
                else:
                    sub = self._module_for(
                        f"{target.dotted}.{part}") if target.dotted else None
                    resolved = ("module", sub) if sub is not None else None
            else:
                return None
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    def _resolve_annotation(self, annotation: ast.AST,
                            module: ModuleInfo) -> Optional[ClassInfo]:
        """Resolve a type annotation (incl. ``Optional[X]`` and string
        forms) to a project class."""
        if isinstance(annotation, ast.Subscript):
            # Optional[X] / "Optional[X]"-ish: use the inner expression.
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return self._resolve_annotation(inner, module)
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            text = annotation.value.strip().strip("\"'")
            if text.startswith("Optional[") and text.endswith("]"):
                text = text[len("Optional["):-1]
            if not text.isidentifier():
                return None
            resolved = self._resolve_symbol(module, text)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        return self._resolve_class_expr(annotation, module)

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if not fn.class_name:
            return None
        return self.classes.get((fn.source.rel, fn.class_name))

    def local_types(self, fn: FunctionInfo) -> Dict[str, ClassKey]:
        """Locals (and parameters) of ``fn`` with statically known
        project-class types, from annotations and ``x = ClassName(...)``."""
        module = self.modules.get(fn.source.rel)
        if module is None:
            return {}
        types: Dict[str, ClassKey] = {}
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                resolved = self._resolve_annotation(arg.annotation, module)
                if resolved is not None:
                    types[arg.arg] = resolved.key
        for node in walk_body(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                for call in _first_class_call(node.value):
                    resolved = self._resolve_class_expr(call.func, module)
                    if resolved is not None:
                        types.setdefault(node.targets[0].id, resolved.key)
                        break
        return types

    def resolve_call(self, call: ast.Call, fn: Optional[FunctionInfo],
                     source: SourceFile,
                     local_types: Optional[Dict[str, ClassKey]] = None) \
            -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` that ``call`` statically targets, or
        ``None`` when it cannot be resolved (dynamic dispatch, foreign
        libraries, ...)."""
        module = self.modules.get(source.rel)
        if module is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_symbol(module, func.id)
            if resolved is None:
                return None
            if resolved[0] == "func":
                return resolved[1]
            if resolved[0] == "class":
                return resolved[1].find_method("__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        cls = self.class_of(fn) if fn is not None else None
        path = self_attr_path(func)
        if path is not None and cls is not None:
            if len(path) == 1:
                return cls.find_method(path[0])
            if len(path) == 2:
                attr_type = cls.find_attr_type(path[0])
                if attr_type is not None:
                    owner = self.classes.get(attr_type)
                    if owner is not None:
                        return owner.find_method(path[1])
            return None
        # ``name.method()`` with a typed local / parameter.
        if isinstance(func.value, ast.Name):
            types = local_types if local_types is not None else (
                self.local_types(fn) if fn is not None else {})
            typed = types.get(func.value.id)
            if typed is not None:
                owner = self.classes.get(typed)
                if owner is not None:
                    return owner.find_method(func.attr)
        dotted = dotted_name(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        resolved = self._resolve_symbol(module, parts[0])
        for part in parts[1:]:
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "module":
                if part in target.functions:
                    resolved = ("func", target.functions[part])
                elif part in target.classes:
                    resolved = ("class", target.classes[part])
                else:
                    sub = self._module_for(
                        f"{target.dotted}.{part}") if target.dotted else None
                    resolved = ("module", sub) if sub is not None else None
            elif kind == "class":
                method = target.find_method(part)
                resolved = ("func", method) if method is not None else None
            else:
                return None
        if resolved is None:
            return None
        if resolved[0] == "func":
            return resolved[1]
        if resolved[0] == "class":
            return resolved[1].find_method("__init__")
        return None

    def calls_in(self, fn: FunctionInfo) \
            -> List[Tuple[ast.Call, Optional[FunctionInfo]]]:
        """Every call in ``fn``'s own body (nested defs excluded) with
        its resolution, cached."""
        cached = self._calls_cache.get(fn.key)
        if cached is not None:
            return cached
        local_types = self.local_types(fn)
        calls: List[Tuple[ast.Call, Optional[FunctionInfo]]] = []
        for node in walk_body(fn.node):
            if isinstance(node, ast.Call):
                calls.append((node, self.resolve_call(
                    node, fn, fn.source, local_types)))
        calls.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
        self._calls_cache[fn.key] = calls
        return calls

    def sorted_functions(self) -> List[FunctionInfo]:
        return [self.functions[key] for key in sorted(self.functions)]

    def __repr__(self) -> str:
        return (f"CallGraph({len(self.modules)} modules, "
                f"{len(self.functions)} functions)")
