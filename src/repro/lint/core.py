"""Core types of the contract linter: findings, rules, the project view.

A :class:`Rule` inspects Python source *statically* (stdlib :mod:`ast`,
never importing the code under analysis) and reports :class:`Finding`
objects — one per contract violation, each carrying the ``file:line``
location, the rule id, a severity, and a human message.  Rules come in
two granularities:

* ``check_file`` runs once per :class:`~repro.lint.source.SourceFile`
  (purely local rules: determinism, lock discipline);
* ``check_project`` runs once over the whole :class:`Project` (rules
  that cross-check call sites against a central declaration registry:
  fault sites, metric names, serialization coverage).

The engine (:mod:`repro.lint.engine`) owns pragma suppression and the
baseline (:mod:`repro.lint.baseline`); rules just report everything they
see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Severity levels, most severe first.  Only ``error`` findings gate CI;
#: ``warning`` is reserved for advisory rules.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location.

    ``context`` is the stripped source line the finding points at; the
    baseline matches on ``(rule, path, context)`` rather than the line
    number, so unrelated edits above a baselined finding do not
    invalidate the entry.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    context: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def baseline_key(self) -> tuple:
        return (self.rule, self.path, self.context)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "context": self.context,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{self.severity}: {self.message}")


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (the pragma / baseline / CLI name) and
    ``contract`` (the one-line statement of the invariant enforced,
    surfaced by ``--list-rules`` and the README rule table), then
    override :meth:`check_file`, :meth:`check_project`, or both.
    """

    id: str = ""
    contract: str = ""

    def check_file(self, source) -> List[Finding]:
        return []

    def check_project(self, project: "Project") -> List[Finding]:
        return []

    def finding(self, source, line: int, message: str,
                severity: str = "error") -> Finding:
        """A :class:`Finding` at ``source:line`` with the context line
        filled in (clamped for out-of-range lines)."""
        context = ""
        if 1 <= line <= len(source.lines):
            context = source.lines[line - 1].strip()
        return Finding(rule=self.id, path=source.rel, line=line,
                       message=message, severity=severity, context=context)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id!r})"


class Project:
    """Every parsed source file of one lint run, with lookup helpers."""

    def __init__(self, sources: Sequence[object]) -> None:
        self.sources = list(sources)

    def find_suffix(self, suffix: str):
        """The first source whose path ends with ``suffix`` (posix
        match), or ``None`` — how project rules locate their central
        declaration registry (``repro/faults.py``, ``obs/metrics.py``)."""
        for source in self.sources:
            if source.rel.endswith(suffix):
                return source
        return None

    def parsed(self) -> List[object]:
        """Sources that parsed cleanly (project rules skip the rest)."""
        return [source for source in self.sources if source.tree is not None]

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)

    def __repr__(self) -> str:
        return f"Project({len(self.sources)} files)"
