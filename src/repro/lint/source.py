"""Parsed view of one Python file: AST, comments, pragmas, annotations.

Everything the rules need from a file is extracted once, up front:

* the :mod:`ast` tree (a syntax error becomes a ``parse-error`` finding
  from the engine, and every rule skips the file);
* per-line comments, via :mod:`tokenize` so ``#`` inside string
  literals is never misread as a comment;
* suppression pragmas — ``# repro-lint: disable=<rule>[,<rule>...]``
  on a line suppresses those rules for that line; on a ``def``/``class``
  line it suppresses them for the whole body;
  ``# repro-lint: disable-file=<rule>`` anywhere suppresses the rule
  for the entire file; the rule list may be the word ``all``;
* lock-discipline annotations — ``# guarded-by: <lock>[, <lock>...]``
  on a field assignment declares which lock(s) protect the field
  (several names mean "any one of these suffices": aliases of the same
  underlying lock, like a ``Condition`` wrapping it), and
  ``# requires-lock: <lock>`` on a ``def`` line declares that the
  method is only ever called with the lock already held.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

_DISABLE_RE = re.compile(
    r"repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)
_GUARDED_RE = re.compile(r"guarded-by:\s*(?P<locks>[\w.]+(?:\s*,\s*[\w.]+)*)")
_REQUIRES_RE = re.compile(
    r"requires-lock:\s*(?P<locks>[\w.]+(?:\s*,\s*[\w.]+)*)"
)


def _split_names(text: str) -> Tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


class SourceFile:
    """One file's text, AST, comments, and lint annotations."""

    def __init__(self, text: str, rel: str,
                 path: Optional[Path] = None) -> None:
        self.text = text
        self.rel = rel.replace("\\", "/")
        self.path = path
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.parse_error = exc
        #: ``{line: comment text without the leading '#'}``.
        self.comments: Dict[int, str] = {}
        self._read_comments()
        self.file_disables: Set[str] = set()
        self.line_disables: Dict[int, Set[str]] = {}
        #: ``{line: (lock, ...)}`` for guarded-by / requires-lock.
        self.guarded_by: Dict[int, Tuple[str, ...]] = {}
        self.requires_lock: Dict[int, Tuple[str, ...]] = {}
        self._read_annotations()
        #: ``(def/class line, end line)`` for every scope, used to apply
        #: a ``def``-line pragma to the whole body.
        self.scopes: List[Tuple[int, int]] = []
        if self.tree is not None:
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    self.scopes.append((node.lineno,
                                        node.end_lineno or node.lineno))

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path.read_text(encoding="utf-8"), rel, path=path)

    # -- comments and annotations ----------------------------------------------

    def _read_comments(self) -> None:
        reader = io.StringIO(self.text).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string.lstrip("#")
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # A file that does not tokenize will not have parsed either;
            # the parse-error finding covers it.
            pass

    def _read_annotations(self) -> None:
        for line, comment in self.comments.items():
            match = _DISABLE_RE.search(comment)
            if match:
                rules = set(_split_names(match.group("rules")))
                if match.group("scope"):
                    self.file_disables |= rules
                else:
                    self.line_disables.setdefault(line, set()).update(rules)
            match = _GUARDED_RE.search(comment)
            if match:
                self.guarded_by[line] = _split_names(match.group("locks"))
            match = _REQUIRES_RE.search(comment)
            if match:
                self.requires_lock[line] = _split_names(match.group("locks"))

    # -- suppression -----------------------------------------------------------

    def disabled_rules_at(self, line: int) -> Set[str]:
        """Rules suppressed at ``line``: file pragmas, the line's own
        pragma, and pragmas on any enclosing ``def``/``class`` line."""
        disabled = set(self.file_disables)
        disabled |= self.line_disables.get(line, set())
        for start, end in self.scopes:
            if start <= line <= end and start in self.line_disables:
                disabled |= self.line_disables[start]
        return disabled

    def is_suppressed(self, rule: str, line: int) -> bool:
        disabled = self.disabled_rules_at(line)
        return rule in disabled or "all" in disabled

    def __repr__(self) -> str:
        state = "ok" if self.tree is not None else "syntax error"
        return f"SourceFile({self.rel!r}, {len(self.lines)} lines, {state})"


# -- shared AST helpers --------------------------------------------------------


def self_attr_path(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The attribute chain of a ``self``-rooted expression.

    ``self.a`` -> ``("a",)``; ``self.registry._lock`` ->
    ``("registry", "_lock")``; anything not rooted at the name ``self``
    -> ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return tuple(reversed(parts))
    return None


def self_attr_root(node: ast.AST) -> Optional[str]:
    """The field a store/mutation target ultimately lives on: peel
    subscripts and attribute chains down to ``self.<field>`` and return
    ``field`` (``self.stats.hits`` -> ``stats``;
    ``self._memory[key]`` -> ``_memory``)."""
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            path = self_attr_path(node)
            if path is not None:
                return path[0]
            node = node.value
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def const_str(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
