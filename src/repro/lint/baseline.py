"""The committed baseline: intentional exceptions, each justified.

A finding the repo has decided to live with (an order-insensitive glob
loop, a documented benign race) is recorded here instead of carrying an
inline pragma — the baseline keeps every exception in one reviewable
place, with a one-line justification per entry.

Entries match findings on ``(rule, file, context)`` where ``context`` is
the stripped source line, *not* the line number — edits elsewhere in the
file do not invalidate the baseline.  Each entry carries a ``count``:
``count`` findings with that key are absorbed, the ``count+1``-th is
reported (a regression hiding behind an existing exception still
fails).  Entries that no longer match anything are reported as *stale*
so they get pruned, but staleness alone never fails a run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .core import Finding

#: Default baseline path, relative to the project root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_KEY_FIELDS = ("rule", "file", "context")


class BaselineEntry:
    def __init__(self, rule: str, file: str, context: str,
                 justification: str, count: int = 1) -> None:
        self.rule = rule
        self.file = file
        self.context = context
        self.justification = justification
        self.count = count

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.file, self.context)

    def to_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "rule": self.rule,
            "file": self.file,
            "context": self.context,
            "justification": self.justification,
        }
        if self.count != 1:
            entry["count"] = self.count
        return entry


class Baseline:
    """A set of justified exceptions and the matching machinery."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    # -- I/O -------------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = []
        for raw in payload.get("entries", []):
            missing = [field for field in _KEY_FIELDS if field not in raw]
            if missing:
                raise ValueError(
                    f"baseline entry missing {', '.join(missing)}: {raw!r}")
            entries.append(BaselineEntry(
                rule=raw["rule"], file=raw["file"], context=raw["context"],
                justification=raw.get("justification", ""),
                count=int(raw.get("count", 1)),
            ))
        return cls(entries)

    @classmethod
    def load_or_empty(cls, path: Path) -> "Baseline":
        return cls.load(path) if path.is_file() else cls()

    def dump(self, path: Path) -> None:
        payload = {
            "comment": ("repro.lint baseline: intentional, justified "
                        "exceptions. Matched on (rule, file, context); "
                        "keep justifications current."),
            "entries": [entry.to_dict() for entry in sorted(
                self.entries, key=BaselineEntry.key)],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      justification: str = "TODO: justify") -> "Baseline":
        """A baseline absorbing exactly ``findings`` (``--write-baseline``);
        justifications start as placeholders for the author to fill in."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            counts[finding.baseline_key()] = \
                counts.get(finding.baseline_key(), 0) + 1
        entries = [BaselineEntry(rule=rule, file=file, context=context,
                                 justification=justification, count=count)
                   for (rule, file, context), count in counts.items()]
        return cls(entries)

    # -- matching --------------------------------------------------------------

    def split(self, findings: Sequence[Finding]) \
            -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """``(unbaselined, absorbed, stale_entries)`` for one run."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + entry.count
        matched: Dict[Tuple[str, str, str], int] = {}
        unbaselined: List[Finding] = []
        absorbed: List[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            key = finding.baseline_key()
            if matched.get(key, 0) < budget.get(key, 0):
                matched[key] = matched.get(key, 0) + 1
                absorbed.append(finding)
            else:
                unbaselined.append(finding)
        stale = [entry for entry in self.entries
                 if matched.get(entry.key(), 0) == 0]
        return unbaselined, absorbed, stale

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"Baseline({len(self.entries)} entries)"
