"""Per-function control-flow graphs for path-sensitive lint rules.

One :class:`CFG` per function, at **statement granularity**: every
statement is a node, plus synthetic ``entry``, ``exit`` (normal
completion, including ``return``) and ``raise_exit`` (an exception
escaping the function) nodes.  Edges come in two flavours —

* ``succs``: normal fall-through / branch edges;
* ``exc_succs``: where control goes if the statement raises — the
  innermost enclosing handler dispatch, ``finally`` block, or
  ``raise_exit``.

``try``/``except``/``else``/``finally`` is modelled faithfully enough
for resource analysis: the body's exception edge goes to the handler
dispatch (or straight to ``finally``), handler and ``else`` bodies
propagate *out* of the ``try`` (through the ``finally`` when present),
and a ``finally`` block is built once with a join node whose outgoing
edges cover every continuation (fall-through, escaping exception,
pending ``return``) — a *may*-over-approximation of the path set, which
is the safe direction for leak detection: a release inside ``finally``
kills the fact before the paths re-diverge.

Known simplifications (see the README): ``break``/``continue`` jump
straight to their loop target without visiting intervening ``finally``
blocks, and a statement's own effects are treated as atomic (its
exception edge fires *before* its effects — rules apply kills on both
edge kinds when they need release-before-raise semantics).

Whether a statement can raise at all is approximated by
:func:`expr_can_raise`: anything containing a call, subscript,
attribute access, binary operation, ``raise`` or ``assert`` gets an
exception edge; bare name/constant shuffling does not.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

#: AST expression nodes that justify an exception edge.
_RAISING_NODES = (ast.Call, ast.Subscript, ast.Attribute, ast.BinOp,
                  ast.Raise, ast.Assert, ast.Await, ast.Yield,
                  ast.YieldFrom)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """A bare ``except:`` or ``except BaseException:`` — every exception
    matches, so the try has no escaping "unmatched" edge."""
    return handler.type is None or (
        isinstance(handler.type, ast.Name)
        and handler.type.id == "BaseException")


def expr_can_raise(*nodes: Optional[ast.AST]) -> bool:
    for node in nodes:
        if node is None:
            continue
        for inner in ast.walk(node):
            if isinstance(inner, _RAISING_NODES):
                return True
    return False


class CFGNode:
    """One statement (or synthetic point) in a function's CFG."""

    __slots__ = ("stmt", "kind", "succs", "exc_succs", "index")

    def __init__(self, kind: str, stmt: Optional[ast.stmt] = None) -> None:
        self.kind = kind
        self.stmt = stmt
        self.succs: List["CFGNode"] = []
        self.exc_succs: List["CFGNode"] = []
        self.index = -1

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def __repr__(self) -> str:
        what = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"CFGNode({self.kind}{':' if what else ''}{what}@{self.line})"


class CFG:
    """Control-flow graph of one function (or any statement list)."""

    def __init__(self, entry: CFGNode, exit_node: CFGNode,
                 raise_exit: CFGNode, nodes: List[CFGNode]) -> None:
        self.entry = entry
        self.exit = exit_node
        self.raise_exit = raise_exit
        self.nodes = nodes

    @classmethod
    def build(cls, func_node) -> "CFG":
        """The CFG of ``func_node``'s body (a ``FunctionDef``,
        ``AsyncFunctionDef``, or any object with a ``body`` list)."""
        return _Builder().build(func_node.body)

    def stmt_nodes(self) -> List[CFGNode]:
        return [node for node in self.nodes if node.stmt is not None]

    def __repr__(self) -> str:
        return f"CFG({len(self.nodes)} nodes)"


class _Builder:
    def __init__(self) -> None:
        self.all_nodes: List[CFGNode] = []
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise")
        self._exc_target = self.raise_exit
        self._return_target = self.exit
        self._break_target: Optional[CFGNode] = None
        self._continue_target: Optional[CFGNode] = None

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> CFGNode:
        node = CFGNode(kind, stmt)
        self.all_nodes.append(node)
        return node

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self._new("entry")
        first = self._stmts(body, self.exit)
        entry.succs.append(first)
        # Deterministic reachable ordering (DFS preorder from entry).
        ordered: List[CFGNode] = []
        seen = set()
        stack = [entry]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node.index = len(ordered)
            ordered.append(node)
            for succ in reversed(node.succs + node.exc_succs):
                if id(succ) not in seen:
                    stack.append(succ)
        for sink in (self.exit, self.raise_exit):
            if id(sink) not in seen:
                sink.index = len(ordered)
                ordered.append(sink)
        return CFG(entry, self.exit, self.raise_exit, ordered)

    # -- statement lowering ----------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt], follow: CFGNode) -> CFGNode:
        nxt = follow
        for stmt in reversed(list(body)):
            nxt = self._stmt(stmt, nxt)
        return nxt

    def _maybe_exc(self, node: CFGNode, *exprs: Optional[ast.AST]) -> None:
        if expr_can_raise(*exprs):
            node.exc_succs.append(self._exc_target)

    def _stmt(self, stmt: ast.stmt, follow: CFGNode) -> CFGNode:
        if isinstance(stmt, ast.If):
            node = self._new("stmt", stmt)
            then = self._stmts(stmt.body, follow)
            other = self._stmts(stmt.orelse, follow) if stmt.orelse \
                else follow
            node.succs = [then, other]
            self._maybe_exc(node, stmt.test)
            return node
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, follow)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, follow)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new("stmt", stmt)
            body = self._stmts(stmt.body, follow)
            node.succs = [body]
            node.exc_succs = [self._exc_target]
            return node
        if isinstance(stmt, ast.Return):
            node = self._new("stmt", stmt)
            node.succs = [self._return_target]
            self._maybe_exc(node, stmt.value)
            return node
        if isinstance(stmt, ast.Raise):
            node = self._new("stmt", stmt)
            node.exc_succs = [self._exc_target]
            return node
        if isinstance(stmt, ast.Break):
            node = self._new("stmt", stmt)
            node.succs = [self._break_target
                          if self._break_target is not None else follow]
            return node
        if isinstance(stmt, ast.Continue):
            node = self._new("stmt", stmt)
            node.succs = [self._continue_target
                          if self._continue_target is not None else follow]
            return node
        if isinstance(stmt, ast.Assert):
            node = self._new("stmt", stmt)
            node.succs = [follow]
            node.exc_succs = [self._exc_target]
            return node
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            node = self._new("stmt", stmt)
            node.succs = [follow]
            return node
        if isinstance(stmt, ast.AnnAssign):
            # Local-variable annotations are never evaluated at runtime
            # (PEP 526) — only the target and value can raise.
            node = self._new("stmt", stmt)
            node.succs = [follow]
            self._maybe_exc(node, stmt.target, stmt.value)
            return node
        node = self._new("stmt", stmt)
        node.succs = [follow]
        self._maybe_exc(node, stmt)
        return node

    def _loop(self, stmt, follow: CFGNode) -> CFGNode:
        node = self._new("stmt", stmt)
        saved = (self._break_target, self._continue_target)
        self._break_target, self._continue_target = follow, node
        body = self._stmts(stmt.body, node)
        self._break_target, self._continue_target = saved
        after = self._stmts(stmt.orelse, follow) if stmt.orelse else follow
        node.succs = [body, after]
        if isinstance(stmt, ast.While):
            self._maybe_exc(node, stmt.test)
        else:
            self._maybe_exc(node, stmt.iter, stmt.target)
        return node

    def _try(self, stmt: ast.Try, follow: CFGNode) -> CFGNode:
        outer_exc = self._exc_target
        outer_ret = self._return_target
        fin_entry: Optional[CFGNode] = None
        if stmt.finalbody:
            fin_exit = self._new("join")
            fin_exit.succs = [follow]
            if outer_ret is not follow:
                fin_exit.succs.append(outer_ret)
            fin_exit.exc_succs = [outer_exc]
            # The finally body itself runs with the *outer* targets (an
            # exception inside it propagates past this try).
            fin_entry = self._stmts(stmt.finalbody, fin_exit)
        after_normal = fin_entry if fin_entry is not None else follow
        exc_after = fin_entry if fin_entry is not None else outer_exc
        ret_inside = fin_entry if fin_entry is not None else outer_ret

        if stmt.handlers:
            dispatch = self._new("dispatch")
            self._exc_target, self._return_target = exc_after, ret_inside
            dispatch.succs = [self._stmts(handler.body, after_normal)
                              for handler in stmt.handlers]
            self._exc_target, self._return_target = outer_exc, outer_ret
            if not any(_is_catch_all(handler) for handler in stmt.handlers):
                dispatch.exc_succs = [exc_after]  # no handler matched
            body_exc: CFGNode = dispatch
        else:
            body_exc = exc_after

        if stmt.orelse:
            self._exc_target, self._return_target = exc_after, ret_inside
            body_follow = self._stmts(stmt.orelse, after_normal)
            self._exc_target, self._return_target = outer_exc, outer_ret
        else:
            body_follow = after_normal

        self._exc_target, self._return_target = body_exc, ret_inside
        body_entry = self._stmts(stmt.body, body_follow)
        self._exc_target, self._return_target = outer_exc, outer_ret
        return body_entry
