"""QUBIKOS reproduction: quantum layout-synthesis benchmarks with known
optimal SWAP counts, plus the full tool ecosystem needed to evaluate them
(circuit IR, device library, VF2, a CDCL SAT solver, four heuristic QLS
tools, an exact solver, and the paper's evaluation harness).

Quickstart::

    from repro.arch import get_architecture
    from repro.qubikos import generate, verify_certificate
    from repro.qls import LightSabre

    device = get_architecture("aspen4")
    inst = generate(device, num_swaps=3, num_two_qubit_gates=100, seed=1)
    assert verify_certificate(inst).valid
    result = LightSabre(trials=8, seed=1).run(inst.circuit, device)
    print(result.swap_count / inst.optimal_swaps)  # the optimality gap
"""

__version__ = "1.0.0"

from . import arch, circuit, graphs, qubikos, qls, pipeline, sat, service, \
    evalx, analysis

__all__ = [
    "arch",
    "circuit",
    "graphs",
    "qubikos",
    "qls",
    "pipeline",
    "sat",
    "service",
    "evalx",
    "analysis",
    "__version__",
]
