"""Shared process-pool plumbing for suite-scale parallel evaluation.

One :class:`WorkerPool` is created per suite run and shared by *both*
layers of parallelism: the evaluation harness fans (tool, instance) pairs
over it, and best-of-k tools (LightSABRE) fan their trial chunks over the
same pool instead of spawning a nested pool per call.  A single pool keeps
every core busy without over-subscription and amortises worker start-up
across the whole suite — the property ROADMAP item (b) asks for.

The pool is deliberately thin: a lazily created
:class:`~concurrent.futures.ProcessPoolExecutor` plus the error contract
callers rely on.  Anything raised from :data:`POOL_UNAVAILABLE_ERRORS`
(pool cannot start, or its workers died) means "the pool is gone, run this
piece of work serially"; exceptions raised *by the submitted function*
propagate unchanged.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Callable, Optional

#: Errors that mean "the pool itself is unavailable", as opposed to errors
#: raised by the submitted work.  ``BrokenProcessPool`` (a worker died) is a
#: subclass of ``BrokenExecutor``; ``OSError`` covers sandboxes where
#: forking processes is forbidden outright.
POOL_UNAVAILABLE_ERRORS = (OSError, BrokenExecutor)


class WorkerPool:
    """Persistent process pool shared across an evaluation suite.

    ``workers`` defaults to the host core count.  The underlying executor
    is created on first :meth:`submit` so constructing a pool is free, and
    is shut down by :meth:`shutdown` (or the context-manager exit).
    Submissions after the pool broke raise one of
    :data:`POOL_UNAVAILABLE_ERRORS`, which callers treat as "degrade to
    serial for this piece of work".
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers or os.cpu_count() or 1
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    def submit(self, fn: Callable, *args) -> Future:
        """Schedule ``fn(*args)`` on the pool, creating it if needed."""
        if self._closed:
            raise BrokenExecutor("WorkerPool was shut down")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor.submit(fn, *args)

    def shutdown(self) -> None:
        """Stop the workers; the pool cannot be reused afterwards."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "live" if self._executor is not None else "idle")
        return f"WorkerPool(workers={self.workers}, {state})"
