"""Shared process-pool plumbing for suite-scale parallel evaluation.

One :class:`WorkerPool` is created per suite run and shared by *both*
layers of parallelism: the evaluation harness fans (tool, instance) pairs
over it, and best-of-k tools (LightSABRE) fan their trial chunks over the
same pool instead of spawning a nested pool per call.  A single pool keeps
every core busy without over-subscription and amortises worker start-up
across the whole suite.

Self-healing
------------
A worker process dying (OOM-killed, segfaulted, fault-injected) breaks
the underlying :class:`~concurrent.futures.ProcessPoolExecutor` and fails
*every* in-flight future with :class:`BrokenExecutor` — historically
degrading a whole batch to serial after one casualty.  The pool now heals
itself: a task that fails at the executor level rebuilds the executor
(within a bounded ``respawn_budget``) and resubmits itself, so callers'
futures resolve normally and only the budget-exhausted tail ever sees
:data:`POOL_UNAVAILABLE_ERRORS`.  Tasks must therefore be **pure**
(deterministic functions of their arguments) — every in-repo submission
is — so a healed re-run is bit-identical to the first attempt.
Recoveries are counted in :meth:`WorkerPool.stats`.

An optional ``task_timeout`` bounds stragglers: a task not done after
that many seconds is re-run in the parent and its future resolved with
the parent's result; the abandoned worker attempt is discarded when (if)
it lands.  The worker itself is not killed — process pools cannot abort
a running call — so use this for hung-I/O-shaped stalls, not runaway
compute.

The error contract is unchanged: anything raised from
:data:`POOL_UNAVAILABLE_ERRORS` means "the pool is gone, run this piece
of work serially"; exceptions raised *by the submitted function*
propagate unchanged.

Fault injection: each :meth:`submit` is a ``pool.task`` site — an armed
:class:`repro.faults.FaultPlan` can replace the Nth submission with a
worker-process crash or stretch it with latency (see :mod:`repro.faults`).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from . import faults
from .obs import metrics as obs_metrics

#: Errors that mean "the pool itself is unavailable", as opposed to errors
#: raised by the submitted work.  ``BrokenProcessPool`` (a worker died) is a
#: subclass of ``BrokenExecutor``; ``OSError`` covers sandboxes where
#: forking processes is forbidden outright.
POOL_UNAVAILABLE_ERRORS = (OSError, BrokenExecutor)


def _exit_worker() -> None:
    """Injected ``pool.task`` crash: die the way a real casualty does —
    no exception, no cleanup, just a vanished process."""
    os._exit(1)


def _delay_call(seconds: float, fn: Callable, *args):
    """Injected ``pool.task`` latency: sleep in the worker, then run."""
    time.sleep(seconds)
    return fn(*args)


class _MeteredResult:
    """A task result with the worker's metric delta piggybacked on it."""

    __slots__ = ("value", "metrics")

    def __init__(self, value, metrics) -> None:
        self.value = value
        self.metrics = metrics


def _metered_call(fn: Callable, *args) -> _MeteredResult:
    """Worker-side wrapper: run ``fn`` and ship back the counters it
    accumulated.  Fork-started workers inherit the parent's armed
    registry (with the parent's totals baked in), so the delta is
    computed against a before-snapshot; in a spawn-started worker the
    registry is disarmed and the delta is ``None``."""
    registry = obs_metrics._ACTIVE
    if registry is None:
        return _MeteredResult(fn(*args), None)
    before = registry.snapshot()
    value = fn(*args)
    delta = obs_metrics.snapshot_delta(before, registry.snapshot())
    return _MeteredResult(value, delta or None)


class _Task:
    """One logical submission: the clean (fn, args) to retry with, plus
    the settle flag guarding its caller-visible future."""

    __slots__ = ("fn", "args", "attempts", "settled", "lock")

    def __init__(self, fn: Callable, args: Tuple) -> None:
        self.fn = fn
        self.args = args
        self.attempts = 0
        self.settled = False
        self.lock = threading.Lock()


class WorkerPool:
    """Persistent, self-healing process pool shared across a suite.

    ``workers`` defaults to the host core count (``workers=0`` falls back
    the same way).  The underlying executor is created on first
    :meth:`submit` so constructing a pool is free, and is shut down by
    :meth:`shutdown` (or the context-manager exit).  A broken executor is
    rebuilt transparently up to ``respawn_budget`` times; past the
    budget — and after :meth:`shutdown` — submissions and futures raise
    one of :data:`POOL_UNAVAILABLE_ERRORS`, which callers treat as
    "degrade to serial for this piece of work".
    """

    def __init__(self, workers: Optional[int] = None,
                 respawn_budget: int = 2,
                 task_timeout: Optional[float] = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if respawn_budget < 0:
            raise ValueError("respawn_budget must be non-negative")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        self.workers = workers or os.cpu_count() or 1
        self.respawn_budget = respawn_budget
        self.task_timeout = task_timeout
        self._executor: Optional[ProcessPoolExecutor] = None  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._lock = threading.Lock()
        #: Bumped on every executor rebuild, so concurrent casualties of
        #: one broken executor consume a single respawn between them.
        self._generation = 0  # guarded-by: _lock
        self._respawns = 0  # guarded-by: _lock
        self._recovered_tasks = 0  # guarded-by: _lock
        self._timeout_reruns = 0  # guarded-by: _lock
        self._submitted = 0  # guarded-by: _lock
        self._timers: Dict[int, threading.Timer] = {}  # guarded-by: _lock

    # -- submission ------------------------------------------------------------

    def submit(self, fn: Callable, *args) -> Future:
        """Schedule ``fn(*args)`` on the pool, creating it if needed.

        The returned future resolves with the task's result even if the
        worker running it dies (the task is re-run on a respawned
        executor); it raises :class:`BrokenExecutor` only once the
        respawn budget is exhausted or the pool was shut down.
        """
        task = _Task(fn, args)
        attempt: Optional[Tuple[Callable, Tuple]] = None
        if faults._ACTIVE is not None:
            point = faults.poll(faults.POOL_TASK)
            if point is not None:
                if point.kind == faults.CRASH:
                    attempt = (_exit_worker, ())
                elif point.kind == faults.DELAY:
                    attempt = (_delay_call, (point.seconds, fn) + args)
        if attempt is None and obs_metrics._ACTIVE is not None:
            # Metered attempt: the worker ships its counter deltas back
            # piggybacked on the result (unwrapped in ``_settle``).
            # Post-respawn retries and parent re-runs use the clean
            # payload and go unmetered — correctness over completeness.
            attempt = (_metered_call, (fn,) + args)
            obs_metrics.counter(
                "repro_pool_tasks_total", "Tasks submitted to the pool.",
            ).inc()
        with self._lock:
            if self._closed:
                raise BrokenExecutor("WorkerPool was shut down")
            self._submitted += 1
        outer: Future = Future()
        outer.set_running_or_notify_cancel()
        self._start(task, outer, attempt)
        return outer

    def _start(self, task: _Task, outer: Future,
               attempt: Optional[Tuple[Callable, Tuple]] = None) -> None:
        """Submit one attempt of ``task``, respawning the executor as
        needed; resolves ``outer`` directly when the pool is gone."""
        while True:
            with self._lock:
                if self._closed:
                    self._settle(task, outer,
                                 error=BrokenExecutor("WorkerPool was "
                                                      "shut down"))
                    return
                generation = self._generation
                try:
                    if self._executor is None:
                        self._executor = ProcessPoolExecutor(
                            max_workers=self.workers)
                    inner = self._executor.submit(attempt[0], *attempt[1]) \
                        if attempt is not None \
                        else self._executor.submit(task.fn, *task.args)
                except BrokenExecutor:
                    inner = None
                except OSError as exc:
                    # Cannot fork at all: the pool is unavailable, not
                    # broken — no respawn will help.
                    self._settle(task, outer, error=exc)
                    return
            if inner is not None:
                break
            # Broken at submission time: burn one respawn and retry with
            # the clean payload (an injected crash fires at most once).
            attempt = None
            if not self._respawn(generation):
                self._settle(task, outer,
                             error=BrokenExecutor(
                                 "worker pool broke and its respawn budget "
                                 f"({self.respawn_budget}) is exhausted"))
                return
        task.attempts += 1
        timer = None
        if self.task_timeout is not None:
            timer = threading.Timer(self.task_timeout,
                                    self._rerun_in_parent, (task, outer))
            timer.daemon = True
            with self._lock:
                self._timers[id(task)] = timer
            timer.start()
        inner.add_done_callback(
            lambda f: self._on_done(task, outer, f, generation, timer))

    # -- recovery --------------------------------------------------------------

    def _on_done(self, task: _Task, outer: Future, inner: Future,
                 generation: int, timer: Optional[threading.Timer]) -> None:
        if timer is not None:
            timer.cancel()
            with self._lock:
                self._timers.pop(id(task), None)
        with task.lock:
            if task.settled:
                return  # a timeout re-run already resolved the future
        exc = inner.exception()
        if exc is None:
            self._settle(task, outer, value=inner.result())
            return
        # Deliberately unlocked peek: a stale read only costs one extra
        # _respawn call, which re-checks _closed under the lock.
        if isinstance(exc, BrokenExecutor) and not self._closed:  # repro-lint: disable=lock-discipline
            # Executor-level casualty, not a task error: heal and retry.
            if self._respawn(generation):
                with self._lock:
                    self._recovered_tasks += 1
                if obs_metrics._ACTIVE is not None:
                    obs_metrics.counter(
                        "repro_pool_recovered_tasks_total",
                        "Tasks re-run to completion across a respawn.",
                    ).inc()
                self._start(task, outer)
                return
        self._settle(task, outer, error=exc)

    def _respawn(self, generation: int) -> bool:
        """Replace a broken executor (once per generation, budget
        permitting).  True when the caller should resubmit its task."""
        with self._lock:
            if self._closed:
                return False
            if generation == self._generation:
                # First casualty of this executor: this one pays.
                if self._respawns >= self.respawn_budget:
                    return False
                stale = self._executor
                self._executor = None
                self._generation += 1
                self._respawns += 1
                if obs_metrics._ACTIVE is not None:
                    obs_metrics.counter(
                        "repro_pool_respawns_total",
                        "Executor rebuilds after worker casualties.",
                    ).inc()
            else:
                # A sibling already respawned for this breakage; resubmit
                # onto the current executor (if that one is broken too,
                # the resubmission loops back here with its generation).
                stale = None
        if stale is not None:
            stale.shutdown(wait=False)
        return True

    def _rerun_in_parent(self, task: _Task, outer: Future) -> None:
        """Straggler path: the worker attempt is abandoned (its eventual
        result discarded) and the task runs here, in the parent."""
        with task.lock:
            if task.settled:
                return
        with self._lock:
            if self._closed:
                return
            self._timeout_reruns += 1
            self._timers.pop(id(task), None)
        if obs_metrics._ACTIVE is not None:
            obs_metrics.counter(
                "repro_pool_timeout_reruns_total",
                "Straggler tasks re-run in the parent process.",
            ).inc()
        try:
            value = task.fn(*task.args)
        except BaseException as exc:  # noqa: BLE001 - mirrors worker behaviour
            self._settle(task, outer, error=exc)
        else:
            self._settle(task, outer, value=value)

    @staticmethod
    def _settle(task: _Task, outer: Future, value=None,
                error: Optional[BaseException] = None) -> None:
        with task.lock:
            if task.settled:
                return
            task.settled = True
        if error is not None:
            outer.set_exception(error)
            return
        if isinstance(value, _MeteredResult):
            obs_metrics.merge_active(value.metrics)
            value = value.value
        outer.set_result(value)

    # -- lifecycle / introspection ---------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Health counters: submissions, respawns consumed/remaining,
        tasks recovered across a respawn, straggler re-runs."""
        with self._lock:
            return {
                "workers": self.workers,
                "submitted": self._submitted,
                "respawns": self._respawns,
                "respawn_budget": self.respawn_budget,
                "recovered_tasks": self._recovered_tasks,
                "timeout_reruns": self._timeout_reruns,
                "closed": self._closed,
            }

    def shutdown(self) -> None:
        """Stop the workers; the pool cannot be reused afterwards."""
        with self._lock:
            self._closed = True
            executor = self._executor
            self._executor = None
            timers = list(self._timers.values())
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        if executor is not None:
            executor.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "live" if self._executor is not None else "idle")
        return (f"WorkerPool(workers={self.workers}, {state}, "
                f"respawns={self._respawns}/{self.respawn_budget})")
