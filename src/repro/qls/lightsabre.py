"""LightSABRE evaluation mode: best-of-k randomized SABRE trials.

The paper evaluates Qiskit's LightSABRE with 1000 trials; each trial draws a
fresh random initial placement, runs the forward–backward layout search and
a final routing pass, and the best result by SWAP count wins.  Trial count
is the dominant runtime knob — paper-scale values are reachable but the
default is laptop-sized (see DESIGN.md on scaling).
"""

from __future__ import annotations

import random
from typing import Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.mapping import Mapping
from .base import QLSResult, QLSTool
from .sabre import SabreLayout, SabreParameters


class LightSabre(QLSTool):
    """Best-of-``trials`` SABRE (the paper's strongest baseline)."""

    name = "lightsabre"

    def __init__(self, trials: int = 8,
                 params: Optional[SabreParameters] = None,
                 seed: Optional[int] = None) -> None:
        if trials < 1:
            raise ValueError("need at least one trial")
        self.trials = trials
        self.params = params or SabreParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        rng = random.Random(self.seed)
        best: Optional[QLSResult] = None
        for trial in range(self.trials):
            tool = SabreLayout(params=self.params, seed=rng.randrange(2 ** 31))
            result = tool.run(circuit, coupling, initial_mapping)
            if best is None or result.swap_count < best.swap_count:
                best = result
                best.metadata["winning_trial"] = trial
        assert best is not None
        best.tool = self.name
        best.metadata["trials"] = self.trials
        return best
