"""LightSABRE evaluation mode: best-of-k randomized SABRE trials.

The paper evaluates Qiskit's LightSABRE with 1000 trials; each trial draws a
fresh random initial placement, runs the forward–backward layout search and
a final routing pass, and the best result by SWAP count wins.  Trial count
is the dominant runtime knob, so trials can be fanned out over a process
pool with the ``workers`` parameter: per-trial seeds are drawn up front
from the top-level seed (the same sequence the serial path consumes), each
worker runs a chunk of trials and ships back only its chunk's best result,
and the winner — lowest swap count, earliest trial on ties — is the
minimum over chunk bests.  The parallel path therefore returns
bit-identical results to the serial path for a fixed seed.  Throughput is
recorded as ``trials_per_second`` in the result metadata so the evaluation
harness can report it.

Pool sharing and failure recovery
---------------------------------
Instead of spawning a private pool per call, a suite runner can bind one
persistent :class:`repro.parallel.WorkerPool` via the :attr:`LightSabre.pool`
attribute (the parallel evaluation harness does this automatically); trial
chunks are then submitted to the shared pool, so a whole suite's trials
interleave on one set of workers.  Chunk submission and collection are
fault-isolated: if the pool (shared or private) breaks mid-run — a worker
was OOM-killed, say — only the *failed* chunks are re-run serially in the
parent process, preserving every chunk result that already completed
(``retried_chunks`` in the metadata counts the re-runs).  Exceptions raised
by the trials themselves propagate unchanged — they would recur serially
anyway.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
import random
from typing import List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..parallel import POOL_UNAVAILABLE_ERRORS, WorkerPool
from ..qubikos.mapping import Mapping
from .base import QLSResult, QLSTool
from .sabre import SabreLayout, SabreParameters


def _run_trial_chunk(circuit: QuantumCircuit, coupling: CouplingGraph,
                     params: SabreParameters, initial_mapping: Optional[Mapping],
                     indexed_seeds: Sequence[Tuple[int, int]]
                     ) -> Tuple[int, QLSResult]:
    """Worker: run a batch of trials, return the chunk's best.

    Best = lowest swap count, earliest trial index on ties — the same key
    the serial path uses, so the minimum over chunk bests is the serial
    winner.  Only one ``QLSResult`` travels back per worker, which keeps
    IPC small at paper-scale trial counts without a winner replay.
    """
    best_index = -1
    best: Optional[QLSResult] = None
    for index, seed in indexed_seeds:
        result = SabreLayout(params=params, seed=seed).run(
            circuit, coupling, initial_mapping
        )
        if best is None or result.swap_count < best.swap_count:
            best = result
            best_index = index
    assert best is not None
    return best_index, best


class LightSabre(QLSTool):
    """Best-of-``trials`` SABRE (the paper's strongest baseline).

    ``workers`` > 1 distributes trials over a private process pool;
    ``None``/``0``/``1`` runs serially.  Binding :attr:`pool` to a shared
    :class:`repro.parallel.WorkerPool` overrides ``workers`` and submits the
    trial chunks there instead.  All paths pick the same winner for a fixed
    ``seed``.
    """

    name = "lightsabre"

    #: The parallel evaluation harness binds its suite-wide pool to tools
    #: advertising this flag (see ``repro.evalx.harness.evaluate``).
    supports_shared_pool = True

    def __init__(self, trials: int = 8,
                 params: Optional[SabreParameters] = None,
                 seed: Optional[int] = None,
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        if trials < 1:
            raise ValueError("need at least one trial")
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        self.trials = trials
        self.params = params or SabreParameters()
        self.seed = seed
        self.workers = workers
        #: Optional shared pool; not pickled with the tool (workers never
        #: nest pools — a tool shipped to a pool worker runs serially there).
        self.pool = pool

    def __getstate__(self):
        state = self.__dict__.copy()
        state["pool"] = None  # executors do not cross process boundaries
        return state

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        rng = random.Random(self.seed)
        trial_seeds = [rng.randrange(2 ** 31) for _ in range(self.trials)]
        pool = self.pool
        if pool is not None:
            workers = min(getattr(pool, "workers", 1) or 1, self.trials)
        else:
            workers = min(self.workers or 1, self.trials)
        if pool is not None and self.trials > 1:
            best, trial_phase, used_workers, retried = self._run_parallel(
                circuit, coupling, initial_mapping, trial_seeds,
                max(workers, 1), pool,
            )
        elif workers > 1:
            best, trial_phase, used_workers, retried = self._run_parallel(
                circuit, coupling, initial_mapping, trial_seeds, workers, None
            )
        else:
            best, trial_phase = self._run_serial(
                circuit, coupling, initial_mapping, trial_seeds
            )
            used_workers = 1
            retried = None
        best.tool = self.name
        best.metadata["trials"] = self.trials
        # How the trials actually ran: 1 after a pool-unavailable fallback.
        best.metadata["workers"] = used_workers
        if retried is not None:
            best.metadata["retried_chunks"] = retried
        if trial_phase > 0:
            best.metadata["trials_per_second"] = self.trials / trial_phase
        return best

    def _run_serial(self, circuit: QuantumCircuit, coupling: CouplingGraph,
                    initial_mapping: Optional[Mapping],
                    trial_seeds: Sequence[int]) -> Tuple[QLSResult, float]:
        start = time.perf_counter()
        best: Optional[QLSResult] = None
        for trial, seed in enumerate(trial_seeds):
            tool = SabreLayout(params=self.params, seed=seed)
            result = tool.run(circuit, coupling, initial_mapping)
            if best is None or result.swap_count < best.swap_count:
                best = result
                best.metadata["winning_trial"] = trial
        assert best is not None
        return best, time.perf_counter() - start

    def _collect_chunks(self, circuit: QuantumCircuit,
                        coupling: CouplingGraph,
                        initial_mapping: Optional[Mapping],
                        chunks: Sequence[Sequence[Tuple[int, int]]],
                        submit) -> Tuple[List[Tuple[int, QLSResult]],
                                         List[Sequence[Tuple[int, int]]]]:
        """Submit every chunk via ``submit`` and collect the per-chunk
        winners; chunks that hit a pool-level failure on submission or
        collection are re-run serially in this process."""
        chunk_bests: List[Tuple[int, QLSResult]] = []
        failed: List[Sequence[Tuple[int, int]]] = []
        futures = []
        for chunk in chunks:
            try:
                futures.append(submit(_run_trial_chunk, circuit, coupling,
                                      self.params, initial_mapping, chunk))
            except POOL_UNAVAILABLE_ERRORS:
                futures.append(None)
        for chunk, future in zip(chunks, futures):
            if future is None:
                failed.append(chunk)
                continue
            try:
                chunk_bests.append(future.result())
            except POOL_UNAVAILABLE_ERRORS:
                failed.append(chunk)
        # Re-run only the failed chunks, serially, in this process.
        for chunk in failed:
            chunk_bests.append(_run_trial_chunk(
                circuit, coupling, self.params, initial_mapping, chunk
            ))
        return chunk_bests, failed

    def _run_parallel(self, circuit: QuantumCircuit, coupling: CouplingGraph,
                      initial_mapping: Optional[Mapping],
                      trial_seeds: Sequence[int], workers: int,
                      pool: Optional[WorkerPool]
                      ) -> Tuple[QLSResult, float, int, int]:
        """Chunked trials on ``pool`` (or a private pool when ``None``).

        Returns ``(best, trial_phase_seconds, effective_workers,
        retried_chunks)``.  Chunks whose pool submission or collection hit a
        pool-level failure are re-run serially in the calling process; chunk
        results that already completed are kept, so a single dead worker at
        paper scale costs one chunk of work, not the whole trial budget.
        """
        indexed = list(enumerate(trial_seeds))
        chunks = [indexed[i::workers] for i in range(workers)]
        chunks = [c for c in chunks if c]
        start = time.perf_counter()
        if pool is None:
            try:
                owned = ProcessPoolExecutor(max_workers=len(chunks))
            except POOL_UNAVAILABLE_ERRORS:
                # Pool unavailable outright (sandboxed/forbidden fork):
                # degrade gracefully to the plain serial path.
                best, trial_phase = self._run_serial(
                    circuit, coupling, initial_mapping, trial_seeds
                )
                return best, trial_phase, 1, 0
            try:
                chunk_bests, failed = self._collect_chunks(
                    circuit, coupling, initial_mapping, chunks, owned.submit)
            finally:
                owned.shutdown()
        else:
            chunk_bests, failed = self._collect_chunks(
                circuit, coupling, initial_mapping, chunks, pool.submit)
        trial_phase = time.perf_counter() - start
        # Serial tie-break: lowest swap count, earliest trial among ties.
        # Trial indices are unique, so the minimum is order-independent and
        # re-run chunks appended out of order cannot change the winner.
        winner, best = min(
            chunk_bests, key=lambda pair: (pair[1].swap_count, pair[0])
        )
        best.metadata["winning_trial"] = winner
        effective = max(1, len(chunks) - len(failed))
        return best, trial_phase, effective, len(failed)
