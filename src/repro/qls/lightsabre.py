"""LightSABRE evaluation mode: best-of-k randomized SABRE trials.

The paper evaluates Qiskit's LightSABRE with 1000 trials; each trial draws a
fresh random initial placement, runs the forward–backward layout search and
a final routing pass, and the best result by SWAP count wins.  Trial count
is the dominant runtime knob, so trials can be fanned out over a process
pool with the ``workers`` parameter: per-trial seeds are drawn up front
from the top-level seed (the same sequence the serial path consumes), each
worker runs a chunk of trials and ships back only its chunk's best result,
and the winner — lowest swap count, earliest trial on ties — is the
minimum over chunk bests.  The parallel path therefore returns
bit-identical results to the serial path for a fixed seed.  Throughput is
recorded as ``trials_per_second`` in the result metadata so the evaluation
harness can report it.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
import random
from typing import List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.mapping import Mapping
from .base import QLSResult, QLSTool
from .sabre import SabreLayout, SabreParameters


def _run_trial_chunk(circuit: QuantumCircuit, coupling: CouplingGraph,
                     params: SabreParameters, initial_mapping: Optional[Mapping],
                     indexed_seeds: Sequence[Tuple[int, int]]
                     ) -> Tuple[int, QLSResult]:
    """Worker: run a batch of trials, return the chunk's best.

    Best = lowest swap count, earliest trial index on ties — the same key
    the serial path uses, so the minimum over chunk bests is the serial
    winner.  Only one ``QLSResult`` travels back per worker, which keeps
    IPC small at paper-scale trial counts without a winner replay.
    """
    best_index = -1
    best: Optional[QLSResult] = None
    for index, seed in indexed_seeds:
        result = SabreLayout(params=params, seed=seed).run(
            circuit, coupling, initial_mapping
        )
        if best is None or result.swap_count < best.swap_count:
            best = result
            best_index = index
    assert best is not None
    return best_index, best


class LightSabre(QLSTool):
    """Best-of-``trials`` SABRE (the paper's strongest baseline).

    ``workers`` > 1 distributes trials over a :class:`ProcessPoolExecutor`;
    ``None``/``0``/``1`` runs serially.  Both paths pick the same winner for
    a fixed ``seed``.
    """

    name = "lightsabre"

    def __init__(self, trials: int = 8,
                 params: Optional[SabreParameters] = None,
                 seed: Optional[int] = None,
                 workers: Optional[int] = None) -> None:
        if trials < 1:
            raise ValueError("need at least one trial")
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        self.trials = trials
        self.params = params or SabreParameters()
        self.seed = seed
        self.workers = workers

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        rng = random.Random(self.seed)
        trial_seeds = [rng.randrange(2 ** 31) for _ in range(self.trials)]
        workers = min(self.workers or 1, self.trials)
        if workers > 1:
            best, trial_phase, used_workers = self._run_parallel(
                circuit, coupling, initial_mapping, trial_seeds, workers
            )
        else:
            best, trial_phase = self._run_serial(
                circuit, coupling, initial_mapping, trial_seeds
            )
            used_workers = 1
        best.tool = self.name
        best.metadata["trials"] = self.trials
        # How the trials actually ran: 1 after a pool-unavailable fallback.
        best.metadata["workers"] = used_workers
        if trial_phase > 0:
            best.metadata["trials_per_second"] = self.trials / trial_phase
        return best

    def _run_serial(self, circuit: QuantumCircuit, coupling: CouplingGraph,
                    initial_mapping: Optional[Mapping],
                    trial_seeds: Sequence[int]) -> Tuple[QLSResult, float]:
        start = time.perf_counter()
        best: Optional[QLSResult] = None
        for trial, seed in enumerate(trial_seeds):
            tool = SabreLayout(params=self.params, seed=seed)
            result = tool.run(circuit, coupling, initial_mapping)
            if best is None or result.swap_count < best.swap_count:
                best = result
                best.metadata["winning_trial"] = trial
        assert best is not None
        return best, time.perf_counter() - start

    def _run_parallel(self, circuit: QuantumCircuit, coupling: CouplingGraph,
                      initial_mapping: Optional[Mapping],
                      trial_seeds: Sequence[int], workers: int
                      ) -> Tuple[QLSResult, float, int]:
        indexed = list(enumerate(trial_seeds))
        chunks = [indexed[i::workers] for i in range(workers)]
        chunks = [c for c in chunks if c]
        start = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(_run_trial_chunk, circuit, coupling,
                                self.params, initial_mapping, chunk)
                    for chunk in chunks
                ]
                chunk_bests: List[Tuple[int, QLSResult]] = [
                    future.result() for future in futures
                ]
        except (OSError, BrokenExecutor):
            # Pool unavailable or its workers died (sandboxed/forbidden
            # fork): degrade gracefully.  Exceptions raised *by trials*
            # propagate unchanged — they would recur serially anyway.
            best, trial_phase = self._run_serial(circuit, coupling,
                                                 initial_mapping, trial_seeds)
            return best, trial_phase, 1
        trial_phase = time.perf_counter() - start
        # Serial tie-break: lowest swap count, earliest trial among ties.
        winner, best = min(
            chunk_bests, key=lambda pair: (pair[1].swap_count, pair[0])
        )
        best.metadata["winning_trial"] = winner
        return best, trial_phase, len(chunks)
