"""t|ket⟩-style slice router (after Cowtan et al., arXiv:1902.08091).

The real t|ket⟩ routing pass is unavailable offline; this reimplementation
follows the published algorithm's shape: gates are grouped into
*timeslices* (maximal sets of dependency-independent gates), the router
greedily executes the current slice, and when blocked it picks the SWAP
that minimizes a distance cost summed over the next few slices with
geometrically decaying weights.  Distinguishing features versus SABRE:
slice-based lookahead (not a gate-count extended set), no decay penalty on
recently moved qubits, and deterministic tie-breaking — the combination
that historically trails SABRE on SWAP count, as the paper observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag, ExecutionFrontier
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping
from .base import QLSError, QLSResult, QLSTool
from .initial import greedy_degree_mapping
from .reinsert import split_one_qubit_gates, weave_transpiled
from .sabre import _force_route_one

Edge = Tuple[int, int]


@dataclass(frozen=True)
class TketParameters:
    """Router tunables (defaults follow the published description)."""

    lookahead_slices: int = 4
    slice_decay: float = 0.6


class TketLikeRouter(QLSTool):
    """Slice-frontier router with decayed multi-slice lookahead."""

    name = "tketlike"

    def __init__(self, params: Optional[TketParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or TketParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError("circuit larger than device")
        rng = random.Random(self.seed)
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        if initial_mapping is None:
            mapping = greedy_degree_mapping(skeleton, coupling, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()

        dag = DependencyDag.from_circuit(skeleton)
        frontier = ExecutionFrontier(dag)
        layer_of = self._static_layers(dag)
        dist = coupling.distance_matrix.tolist()
        routed: List[Tuple[int, Gate]] = []
        mapping_at: Dict[int, Mapping] = {}
        swap_count = 0
        stall = 0
        stall_limit = max(16, 6 * coupling.diameter())

        while not frontier.done():
            if self._execute_ready(dag, frontier, coupling, mapping,
                                   routed, mapping_at):
                stall = 0
                continue
            if frontier.done():
                break
            if stall >= stall_limit:
                forced = _force_route_one(dag, frontier, coupling, mapping, routed)
                swap_count += forced
                stall = 0
                continue
            swap = self._best_swap(dag, frontier, layer_of, coupling, mapping, dist)
            mapping.swap_physical(*swap)
            routed.append((-1, Gate("swap", swap)))
            swap_count += 1
            stall += 1

        transpiled = weave_transpiled(
            coupling.num_qubits, routed, bundles, tail,
            mapping_at=mapping_at, final_mapping=mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name, circuit=transpiled,
            initial_mapping=start_mapping, swap_count=swap_count,
        )

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _static_layers(dag: DependencyDag) -> List[int]:
        """ASAP layer index per gate (the slice structure)."""
        layer_of = [0] * len(dag)
        for node in dag.topological_order():
            for nxt in dag.successors(node):
                layer_of[nxt] = max(layer_of[nxt], layer_of[node] + 1)
        return layer_of

    @staticmethod
    def _execute_ready(dag: DependencyDag, frontier: ExecutionFrontier,
                       coupling: CouplingGraph, mapping: Mapping,
                       routed: List[Tuple[int, Gate]],
                       mapping_at: Dict[int, Mapping]) -> bool:
        progressed = False
        again = True
        while again:
            again = False
            for node in sorted(frontier.front):
                g = dag.gates[node]
                p1, p2 = mapping.phys(g[0]), mapping.phys(g[1])
                if coupling.has_edge(p1, p2):
                    frontier.execute(node)
                    routed.append((node, g.remap({g[0]: p1, g[1]: p2})))
                    mapping_at[node] = mapping.copy()
                    again = True
                    progressed = True
        return progressed

    def _best_swap(self, dag: DependencyDag, frontier: ExecutionFrontier,
                   layer_of: List[int], coupling: CouplingGraph,
                   mapping: Mapping, dist) -> Edge:
        """Candidate SWAP minimizing the decayed multi-slice distance cost."""
        # Group the unexecuted gates of the next few slices.
        pending: Dict[int, List[int]] = {}
        executed = frontier.executed
        base_layer = min(layer_of[n] for n in frontier.front)
        horizon = base_layer + self.params.lookahead_slices
        for node in range(len(dag)):
            if node in executed:
                continue
            layer = layer_of[node]
            if base_layer <= layer < horizon:
                pending.setdefault(layer - base_layer, []).append(node)

        candidates = set()
        for node in frontier.front:
            for q in dag.gates[node].qubits:
                p = mapping.phys(q)
                for nbr in coupling.neighbors(p):
                    candidates.add((p, nbr) if p < nbr else (nbr, p))
        if not candidates:
            raise QLSError("no candidate swaps available")

        def cost(swap: Edge) -> float:
            p1, p2 = swap

            def position(q: int) -> int:
                p = mapping.phys(q)
                if p == p1:
                    return p2
                if p == p2:
                    return p1
                return p

            total = 0.0
            weight = 1.0
            for slice_index in range(self.params.lookahead_slices):
                for node in pending.get(slice_index, ()):
                    g = dag.gates[node]
                    total += weight * dist[position(g[0])][position(g[1])]
                weight *= self.params.slice_decay
            return total

        return min(sorted(candidates), key=cost)
