"""t|ket⟩-style slice router (after Cowtan et al., arXiv:1902.08091).

The real t|ket⟩ routing pass is unavailable offline; this reimplementation
follows the published algorithm's shape: gates are grouped into
*timeslices* (maximal sets of dependency-independent gates), the router
greedily executes the current slice, and when blocked it picks the SWAP
that minimizes a distance cost summed over the next few slices with
geometrically decaying weights.  Distinguishing features versus SABRE:
slice-based lookahead (not a gate-count extended set), no decay penalty on
recently moved qubits, and deterministic tie-breaking — the combination
that historically trails SABRE on SWAP count, as the paper observes.

Performance architecture
------------------------
The SWAP decision loop gets the same treatment as the SABRE engine (see
:mod:`repro.qls.sabre`), while staying *bit-identical* to the reference
formulation — fixed seeds reproduce the golden swap counts and circuit
hashes in ``tests/qls/test_perf_equivalence.py``:

* the per-layer lists of unexecuted gates are memoised and invalidated
  only when a gate executes, so a stall window of many SWAP decisions
  stops re-scanning the whole DAG to rebuild its pending slices;
* distances come from the cached :attr:`CouplingGraph.distance_rows`
  nested lists instead of a per-run ``distance_matrix.tolist()``;
* for the default rational decay (0.6 = 3/5) the decayed multi-slice cost
  is scored in *exact integer* arithmetic — each slice weight becomes
  ``3^s * 5^(L-1-s)`` — and each candidate SWAP adjusts only the gates its
  two endpoints touch instead of re-summing every pending gate.  Exact
  integers order candidates identically to the reference float costs
  (nonzero scaled differences are ≥ 1, i.e. ≥ ``5^-(L-1)`` unscaled, far
  above float rounding noise); *exact ties* are re-scored for just the
  tied candidates with the reference float operation sequence, so the
  deterministic first-minimum tie-break matches bit for bit;
* on devices with more than ``TketParameters.vectorize_above`` qubits the
  candidate set is large enough that the integer scoring moves to a
  vectorised numpy path (int64, still exact — ROADMAP item d);
* mapping snapshots use the compact swap-delta
  :class:`~repro.qubikos.mapping.MappingTimeline` instead of deep-copying
  the mapping per executed gate.

Irrational (general float) decay factors fall back to a scoring loop that
replays the reference float operation sequence per candidate — still
benefiting from the memoised slices and precomputed operand positions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag, ExecutionFrontier
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping, MappingTimeline
from .base import QLSError, QLSResult, QLSTool
from .initial import greedy_degree_mapping
from .reinsert import split_one_qubit_gates, weave_transpiled
from .sabre import _force_route_one

Edge = Tuple[int, int]


@dataclass(frozen=True)
class TketParameters:
    """Router tunables (defaults follow the published description)."""

    lookahead_slices: int = 4
    slice_decay: float = 0.6
    #: Device size above which candidate scoring switches to the vectorised
    #: numpy path (only reachable when the decay is exactly rational).
    vectorize_above: int = 200


def _exact_slice_weights(decay: float, slices: int) -> Optional[List[int]]:
    """Integer slice weights ``num^s * den^(L-1-s)`` for rational decays.

    Multiplying every slice weight ``decay^s`` by ``den^(L-1)`` turns the
    decayed cost into an exact integer without changing the candidate
    order.  Returns ``None`` when ``decay`` is not a small rational (or the
    scale factor would grow large enough to weaken the float-vs-exact
    ordering argument), in which case the caller replays the reference
    float scoring.
    """
    if decay <= 0:
        return None
    frac = Fraction(decay).limit_denominator(64)
    if float(frac) != decay:
        return None
    num, den = frac.numerator, frac.denominator
    if den ** max(slices - 1, 0) > 10 ** 9:
        return None
    return [num ** s * den ** (slices - 1 - s) for s in range(slices)]


class TketLikeRouter(QLSTool):
    """Slice-frontier router with decayed multi-slice lookahead."""

    name = "tketlike"

    def __init__(self, params: Optional[TketParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or TketParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError("circuit larger than device")
        rng = random.Random(self.seed)
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        if initial_mapping is None:
            mapping = greedy_degree_mapping(skeleton, coupling, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()

        dag = DependencyDag.from_circuit(skeleton)
        frontier = ExecutionFrontier(dag)
        layer_of = self._static_layers(dag)
        pi = mapping.forward  # live π array, mutated by swap_physical
        ops = dag.op_pairs
        npi = len(pi)
        for a, b in ops:
            if a >= npi or pi[a] < 0 or b >= npi or pi[b] < 0:
                raise QLSError(f"program qubit of gate pair ({a}, {b}) is unmapped")
        # Memoised slice state: unexecuted gates per static layer, ascending
        # node order, invalidated (one removal) only when a gate executes.
        unexecuted_by_layer: List[List[int]] = [
            [] for _ in range(max(layer_of, default=-1) + 1)
        ]
        for node, layer in enumerate(layer_of):
            unexecuted_by_layer[layer].append(node)

        weights = _exact_slice_weights(self.params.slice_decay,
                                       self.params.lookahead_slices)
        timeline = MappingTimeline(mapping)
        routed: List[Tuple[int, Gate]] = []
        swap_count = 0
        stall = 0
        stall_limit = max(16, 6 * coupling.diameter())

        while not frontier.done():
            if self._execute_ready(dag, frontier, coupling, mapping, routed,
                                   timeline, layer_of, unexecuted_by_layer):
                stall = 0
                continue
            if frontier.done():
                break
            if stall >= stall_limit:
                forced = _force_route_one(dag, frontier, coupling, mapping,
                                          routed, timeline)
                swap_count += forced
                stall = 0
                continue
            swap = self._best_swap(dag, frontier, layer_of, coupling, mapping,
                                   unexecuted_by_layer, weights)
            mapping.swap_physical(*swap)
            routed.append((-1, Gate("swap", swap)))
            timeline.record_swap(*swap)
            swap_count += 1
            stall += 1

        transpiled = weave_transpiled(
            coupling.num_qubits, routed, bundles, tail,
            mapping_at=timeline, final_mapping=mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name, circuit=transpiled,
            initial_mapping=start_mapping, swap_count=swap_count,
        )

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _static_layers(dag: DependencyDag) -> List[int]:
        """ASAP layer index per gate (the slice structure)."""
        layer_of = [0] * len(dag)
        for node in dag.topological_order():
            for nxt in dag.successors(node):
                layer_of[nxt] = max(layer_of[nxt], layer_of[node] + 1)
        return layer_of

    @staticmethod
    def _execute_ready(dag: DependencyDag, frontier: ExecutionFrontier,
                       coupling: CouplingGraph, mapping: Mapping,
                       routed: List[Tuple[int, Gate]],
                       timeline: MappingTimeline,
                       layer_of: Sequence[int],
                       unexecuted_by_layer: List[List[int]]) -> bool:
        # Executes satisfiable gates in ascending node order, pass by pass.
        # After the first sweep the mapping is unchanged, so only the gates
        # released by an execution can become satisfiable — later sweeps
        # iterate the released lists instead of re-sorting the whole front.
        pi = mapping.forward
        ops = dag.op_pairs
        adj = coupling.neighbors
        progressed = False
        worklist: Sequence[int] = frontier.front_sorted()
        while worklist:
            released_all: List[int] = []
            for node in worklist:
                a, b = ops[node]
                p1, p2 = pi[a], pi[b]
                if p2 in adj(p1):
                    released_all.extend(frontier.execute(node))
                    unexecuted_by_layer[layer_of[node]].remove(node)
                    routed.append((node, dag.gates[node].remap({a: p1, b: p2})))
                    timeline.record_gate(node)
                    progressed = True
            worklist = sorted(released_all)
        return progressed

    def _best_swap(self, dag: DependencyDag, frontier: ExecutionFrontier,
                   layer_of: Sequence[int], coupling: CouplingGraph,
                   mapping: Mapping,
                   unexecuted_by_layer: List[List[int]],
                   weights: Optional[List[int]]) -> Edge:
        """Candidate SWAP minimizing the decayed multi-slice distance cost."""
        params = self.params
        slices = params.lookahead_slices
        pi = mapping.forward
        ops = dag.op_pairs
        base_layer = min(layer_of[n] for n in frontier.front)

        # Pending gate operand positions per relative slice (the mapping is
        # fixed for the whole decision, so positions are computed once and
        # shared by every candidate).
        spos: List[List[Tuple[int, int]]] = []
        for s in range(slices):
            layer = base_layer + s
            if layer < len(unexecuted_by_layer):
                spos.append([
                    (pi[ops[n][0]], pi[ops[n][1]])
                    for n in unexecuted_by_layer[layer]
                ])
            else:
                spos.append([])

        candidates = set()
        for node in frontier.front:
            for q in dag.gates[node].qubits:
                p = pi[q]
                for nbr in coupling.neighbors(p):
                    candidates.add((p, nbr) if p < nbr else (nbr, p))
        if not candidates:
            raise QLSError("no candidate swaps available")
        ordered = sorted(candidates)

        if weights is None:
            return self._best_swap_float(coupling, ordered, spos)
        if coupling.num_qubits > params.vectorize_above:
            totals = self._score_vectorised(coupling, ordered, spos, weights)
        else:
            totals = self._score_delta(coupling, ordered, spos, weights)
        best = min(totals)
        tied = [c for c, t in zip(ordered, totals) if t == best]
        if len(tied) == 1:
            return tied[0]
        # Exact integer ties: the reference implementation separates them by
        # float rounding noise.  Re-score only the tied candidates with the
        # reference operation sequence to reproduce its pick bit for bit.
        return self._best_swap_float(coupling, tied, spos)

    def _score_delta(self, coupling: CouplingGraph, ordered: Sequence[Edge],
                     spos: Sequence[Sequence[Tuple[int, int]]],
                     weights: Sequence[int]) -> List[int]:
        """Exact-integer delta scoring: O(touched gates) per candidate."""
        dist = coupling.distance_rows
        flat_a: List[int] = []
        flat_b: List[int] = []
        flat_w: List[int] = []
        touch: Dict[int, List[int]] = {}
        base = 0
        for s, positions in enumerate(spos):
            w = weights[s]
            for pa, pb in positions:
                i = len(flat_a)
                flat_a.append(pa)
                flat_b.append(pb)
                flat_w.append(w)
                base += w * dist[pa][pb]
                touch.setdefault(pa, []).append(i)
                touch.setdefault(pb, []).append(i)
        totals: List[int] = []
        for p1, p2 in ordered:
            l1 = touch.get(p1)
            l2 = touch.get(p2)
            touched = (set(l1) | set(l2)) if (l1 and l2) else (l1 or l2 or ())
            delta = 0
            for i in touched:
                pa = flat_a[i]
                pb = flat_b[i]
                npa = p2 if pa == p1 else (p1 if pa == p2 else pa)
                npb = p2 if pb == p1 else (p1 if pb == p2 else pb)
                delta += flat_w[i] * (dist[npa][npb] - dist[pa][pb])
            totals.append(base + delta)
        return totals

    @staticmethod
    def _score_vectorised(coupling: CouplingGraph, ordered: Sequence[Edge],
                          spos: Sequence[Sequence[Tuple[int, int]]],
                          weights: Sequence[int]) -> List[int]:
        """Numpy candidate scoring — same exact integers as `_score_delta`.

        Scores the full (candidate × pending gate) grid in one shot; on
        200+-qubit devices the candidate set is large enough that the
        vectorised gather beats the per-candidate python loop.
        """
        import numpy as np

        pa = np.array([p for positions in spos for p, _ in positions],
                      dtype=np.int64)
        pb = np.array([p for positions in spos for _, p in positions],
                      dtype=np.int64)
        w = np.array([weights[s] for s, positions in enumerate(spos)
                      for _ in positions], dtype=np.int64)
        if pa.size == 0:
            return [0] * len(ordered)
        dist = coupling.distance_matrix.astype(np.int64, copy=False)
        p1 = np.array([c[0] for c in ordered], dtype=np.int64)[:, None]
        p2 = np.array([c[1] for c in ordered], dtype=np.int64)[:, None]
        npa = np.where(pa == p1, p2, np.where(pa == p2, p1, pa))
        npb = np.where(pb == p1, p2, np.where(pb == p2, p1, pb))
        totals = (w * dist[npa, npb]).sum(axis=1)
        return totals.tolist()

    def _best_swap_float(self, coupling: CouplingGraph,
                         ordered: Sequence[Edge],
                         spos: Sequence[Sequence[Tuple[int, int]]]) -> Edge:
        """Reference float scoring, first strict minimum in candidate order.

        Replays the reference implementation's exact float operation
        sequence — per slice, per pending gate, ``total += weight * dist``
        with ``weight`` decayed once per slice — so the returned pick (and
        its tie-break by candidate order) is bit-identical to the
        pre-rebuild router.  Used as the full scoring path for irrational
        decays and as the tie-breaker for the exact-integer paths.
        """
        decay = self.params.slice_decay
        dist = coupling.distance_rows
        best_swap: Optional[Edge] = None
        best_cost = float("inf")
        for p1, p2 in ordered:
            total = 0.0
            weight = 1.0
            for positions in spos:
                for pa, pb in positions:
                    npa = p2 if pa == p1 else (p1 if pa == p2 else pa)
                    npb = p2 if pb == p1 else (p1 if pb == p2 else pb)
                    total += weight * dist[npa][npb]
                weight *= decay
            if total < best_cost:
                best_cost = total
                best_swap = (p1, p2)
        assert best_swap is not None
        return best_swap
