"""Layout-synthesis tools: SABRE/LightSABRE, slice router, A*, multilevel,
and the exact SAT-based solver, plus validation utilities.

All three routing engines are throughput-oriented while staying
bit-identical to their reference formulations: SABRE (see
:mod:`repro.qls.sabre`) pioneered the architecture — memoised
frontier/extended set, exact-integer delta scoring against cached distance
rows, per-run DAG and cost-model reuse, compact mapping timelines — and
the t|ket⟩-style slice router (:mod:`repro.qls.tketlike`, plus a
vectorised numpy scoring path for 200+-qubit devices) and the per-layer A*
mapper (:mod:`repro.qls.astar`) received the same treatment.
:class:`LightSabre` fans best-of-k trials over a process pool
(``workers``, or a shared :class:`repro.parallel.WorkerPool` bound to its
``pool`` attribute) with deterministic per-trial seeds, and re-runs only
failed trial chunks if the pool breaks — serial and parallel runs return
identical results for a fixed seed.
"""

from .base import QLSError, QLSResult, QLSTool
from .validate import ValidationReport, count_swaps, strip_swaps_and_unmap, validate_transpiled
from .initial import greedy_degree_mapping, random_mapping, trivial_mapping, vf2_mapping
from .sabre import (
    RoutingOutcome,
    SabreCostModel,
    SabreLayout,
    SabreParameters,
    SwapScore,
    route,
)
from .lightsabre import LightSabre
from .tketlike import TketLikeRouter, TketParameters
from .astar import AStarMapper, AStarParameters
from .mlqls import MlQls, MlqlsParameters
from .bmt import BmtMapper, BmtParameters
from .exact import ExactOutcome, ExactSolver, SatEncoder, brute_force_optimal
from .router import FixedLayoutRouter, route_with_optimal_layout

#: Tool classes by report name — the discoverable registry behind
#: ``repro.evalx.experiments --list-tools`` (previously hardcoded in
#: :func:`paper_tools`).
TOOL_CLASSES = {
    SabreLayout.name: SabreLayout,
    LightSabre.name: LightSabre,
    MlQls.name: MlQls,
    AStarMapper.name: AStarMapper,
    TketLikeRouter.name: TketLikeRouter,
    BmtMapper.name: BmtMapper,
}


def available_tools():
    """Name -> class for every registered layout-synthesis tool."""
    return dict(TOOL_CLASSES)


#: The paper's four heuristic tools, in Figure 4 legend order, built with
#: laptop-scale defaults.
def paper_tools(seed: int = 7, sabre_trials: int = 8):
    """Instantiate the four evaluated tools with default parameters.

    Each tool is now a pipeline construction — a single-stage pipeline
    behind a :class:`repro.pipeline.PipelineTool` adapter, named after the
    bare tool so reports are unchanged.  Results are bit-identical to the
    bare tools (the ``ToolPass`` adapter delegates), and LightSABRE's
    shared-pool trial fan-out still works through the adapter's ``pool``
    delegation.
    """
    from ..pipeline import build_pipeline, PipelineTool  # lazy: avoids cycle

    return [
        PipelineTool(build_pipeline(f"lightsabre:trials={sabre_trials}",
                                    seed=seed), name="lightsabre"),
        PipelineTool(build_pipeline("mlqls", seed=seed), name="mlqls"),
        PipelineTool(build_pipeline("astar", seed=seed), name="astar"),
        PipelineTool(build_pipeline("tketlike", seed=seed), name="tketlike"),
    ]


__all__ = [
    "QLSError",
    "QLSResult",
    "QLSTool",
    "ValidationReport",
    "count_swaps",
    "strip_swaps_and_unmap",
    "validate_transpiled",
    "greedy_degree_mapping",
    "random_mapping",
    "trivial_mapping",
    "vf2_mapping",
    "RoutingOutcome",
    "SabreCostModel",
    "SabreLayout",
    "SabreParameters",
    "SwapScore",
    "route",
    "LightSabre",
    "TketLikeRouter",
    "TketParameters",
    "AStarMapper",
    "AStarParameters",
    "MlQls",
    "MlqlsParameters",
    "BmtMapper",
    "BmtParameters",
    "ExactOutcome",
    "ExactSolver",
    "SatEncoder",
    "brute_force_optimal",
    "FixedLayoutRouter",
    "route_with_optimal_layout",
    "TOOL_CLASSES",
    "available_tools",
    "paper_tools",
]
