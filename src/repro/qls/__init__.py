"""Layout-synthesis tools: SABRE/LightSABRE, slice router, A*, multilevel,
and the exact SAT-based solver, plus validation utilities.

The SABRE routing engine is throughput-oriented (see
:mod:`repro.qls.sabre` for the architecture): memoised frontier/extended
set, allocation-free delta scoring, per-run DAG and cost-model reuse, and
compact mapping timelines.  :class:`LightSabre` additionally accepts a
``workers`` knob that fans best-of-k trials out over a process pool with
deterministic per-trial seeds — serial and parallel runs return identical
results for a fixed seed.
"""

from .base import QLSError, QLSResult, QLSTool
from .validate import ValidationReport, count_swaps, strip_swaps_and_unmap, validate_transpiled
from .initial import greedy_degree_mapping, random_mapping, trivial_mapping, vf2_mapping
from .sabre import (
    RoutingOutcome,
    SabreCostModel,
    SabreLayout,
    SabreParameters,
    SwapScore,
    route,
)
from .lightsabre import LightSabre
from .tketlike import TketLikeRouter, TketParameters
from .astar import AStarMapper, AStarParameters
from .mlqls import MlQls, MlqlsParameters
from .bmt import BmtMapper, BmtParameters
from .exact import ExactOutcome, ExactSolver, SatEncoder, brute_force_optimal
from .router import FixedLayoutRouter, route_with_optimal_layout

#: The paper's four heuristic tools, in Figure 4 legend order, built with
#: laptop-scale defaults.
def paper_tools(seed: int = 7, sabre_trials: int = 8):
    """Instantiate the four evaluated tools with default parameters."""
    return [
        LightSabre(trials=sabre_trials, seed=seed),
        MlQls(seed=seed),
        AStarMapper(seed=seed),
        TketLikeRouter(seed=seed),
    ]


__all__ = [
    "QLSError",
    "QLSResult",
    "QLSTool",
    "ValidationReport",
    "count_swaps",
    "strip_swaps_and_unmap",
    "validate_transpiled",
    "greedy_degree_mapping",
    "random_mapping",
    "trivial_mapping",
    "vf2_mapping",
    "RoutingOutcome",
    "SabreCostModel",
    "SabreLayout",
    "SabreParameters",
    "SwapScore",
    "route",
    "LightSabre",
    "TketLikeRouter",
    "TketParameters",
    "AStarMapper",
    "AStarParameters",
    "MlQls",
    "MlqlsParameters",
    "BmtMapper",
    "BmtParameters",
    "ExactOutcome",
    "ExactSolver",
    "SatEncoder",
    "brute_force_optimal",
    "FixedLayoutRouter",
    "route_with_optimal_layout",
    "paper_tools",
]
