"""Initial-mapping strategies shared by the non-SABRE tools.

* ``trivial`` — identity placement.
* ``random`` — uniform placement.
* ``greedy_degree`` — BFS expansion placing high-interaction-degree program
  qubits on high-degree physical qubits near the device centre (the classic
  Zulehner/tket-style seed).
* ``vf2`` — exact subgraph embedding when one exists (QUEKO-style circuits;
  QUBIKOS circuits never embed, by construction).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.interaction import InteractionGraph
from ..graphs.vf2 import SubgraphMatcher
from ..qubikos.mapping import Mapping


def trivial_mapping(circuit: QuantumCircuit, coupling: CouplingGraph) -> Mapping:
    """Program qubit q on physical qubit q."""
    return Mapping({q: q for q in range(circuit.num_qubits)})


def random_mapping(circuit: QuantumCircuit, coupling: CouplingGraph,
                   rng: random.Random) -> Mapping:
    physical = list(range(coupling.num_qubits))
    rng.shuffle(physical)
    return Mapping({q: physical[q] for q in range(circuit.num_qubits)})


def vf2_mapping(circuit: QuantumCircuit,
                coupling: CouplingGraph) -> Optional[Mapping]:
    """Exact embedding of the interaction graph, if one exists."""
    graph = InteractionGraph.from_circuit(circuit)
    matcher = SubgraphMatcher(
        graph.nodes, graph.edges, range(coupling.num_qubits), coupling.edges
    )
    embedding = matcher.find()
    if embedding is None:
        return None
    used = set(embedding.values())
    free = [p for p in range(coupling.num_qubits) if p not in used]
    mapping: Dict[int, int] = dict(embedding)
    for q in range(circuit.num_qubits):
        if q not in mapping:
            mapping[q] = free.pop()
    return Mapping(mapping)


def greedy_degree_mapping(circuit: QuantumCircuit, coupling: CouplingGraph,
                          rng: Optional[random.Random] = None,
                          seed: int = 0) -> Mapping:
    """Expand outward from the device centre, matching degree profiles.

    Program qubits are placed in descending interaction-degree order; each
    goes on the free physical qubit adjacent to the most already-placed
    interaction partners (ties: higher degree, closer to centre).
    ``seed`` feeds the fallback RNG when the caller does not thread one.
    """
    rng = rng or random.Random(seed)
    graph = InteractionGraph.from_circuit(circuit)
    for q in range(circuit.num_qubits):
        graph.add_node(q)
    dist = coupling.distance_matrix
    eccentricity = dist.max(axis=1)
    center = int(eccentricity.argmin())

    order = sorted(graph.nodes, key=lambda q: -graph.degree(q))
    placement: Dict[int, int] = {}
    used: set = set()
    for q in order:
        placed_neighbors = [placement[u] for u in graph.neighbors(q) if u in placement]
        candidates = [p for p in range(coupling.num_qubits) if p not in used]
        if not candidates:
            raise ValueError("device too small for the circuit")

        def preference(p: int) -> tuple:
            adjacency = sum(1 for n in placed_neighbors if coupling.has_edge(p, n))
            total_distance = sum(int(dist[p, n]) for n in placed_neighbors)
            return (-adjacency, total_distance, -coupling.degree(p), int(dist[p, center]))

        best = min(candidates, key=preference)
        placement[q] = best
        used.add(best)
    return Mapping(placement)
