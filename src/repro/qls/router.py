"""Router-only evaluation (Section IV-C of the paper).

QUBIKOS instances carry their optimal initial mapping, so standalone
routers can be judged in isolation: feed every tool the known-optimal
placement and attribute any excess SWAPs to routing alone.
"""

from __future__ import annotations

from typing import Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.instance import QubikosInstance
from ..qubikos.mapping import Mapping
from .base import QLSResult, QLSTool


class FixedLayoutRouter(QLSTool):
    """Wraps a tool, pinning the initial mapping (route-only mode)."""

    def __init__(self, inner: QLSTool, mapping: Mapping) -> None:
        self.inner = inner
        self.mapping = mapping
        self.name = f"{inner.name}+fixed"

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        pinned = initial_mapping if initial_mapping is not None else self.mapping
        result = self.inner.run(circuit, coupling, initial_mapping=pinned)
        result.tool = self.name
        result.metadata["router_only"] = True
        return result


def route_with_optimal_layout(tool: QLSTool,
                              instance: QubikosInstance) -> QLSResult:
    """Run ``tool`` on ``instance`` from its known-optimal initial mapping."""
    coupling = instance.coupling()
    result = tool.run(
        instance.circuit, coupling, initial_mapping=instance.mapping()
    )
    result.metadata["router_only"] = True
    result.metadata["optimal_swaps"] = instance.optimal_swaps
    return result
