"""Router-only evaluation (Section IV-C of the paper).

QUBIKOS instances carry their optimal initial mapping, so standalone
routers can be judged in isolation: feed every tool the known-optimal
placement and attribute any excess SWAPs to routing alone.

Both entry points are now thin pipeline constructions over
:mod:`repro.pipeline`: a :class:`~repro.pipeline.passes.FixedLayoutPass`
pins the placement and a :class:`~repro.pipeline.passes.ToolPass` runs the
wrapped tool — the same composition ``build_pipeline`` produces for specs
like ``"greedy+sabre"``.  The pre-pipeline classes remain as the public
API; their behaviour (names, metadata, explicit-mapping override) is
unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.instance import QubikosInstance
from ..qubikos.mapping import Mapping
from .base import QLSResult, QLSTool


def _pinned_pipeline(inner: QLSTool, mapping: Mapping, name: str):
    """Pipeline pinning ``mapping`` ahead of ``inner`` (lazy import: the
    pipeline package imports this module's siblings)."""
    from ..pipeline import FixedLayoutPass, Pipeline, ToolPass

    return Pipeline([FixedLayoutPass(mapping), ToolPass(inner)], name=name)


class FixedLayoutRouter(QLSTool):
    """Wraps a tool, pinning the initial mapping (route-only mode).

    Equivalent pipeline: ``Pipeline([FixedLayoutPass(mapping),
    ToolPass(inner)])`` — which is exactly what this adapter builds.  An
    explicit ``initial_mapping`` passed to :meth:`run` still overrides the
    construction-time pin.
    """

    def __init__(self, inner: QLSTool, mapping: Mapping) -> None:
        self.inner = inner
        self.mapping = mapping
        self.name = f"{inner.name}+fixed"
        self._pipeline = _pinned_pipeline(inner, mapping, self.name)

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        result = self._pipeline.run(circuit, coupling,
                                    initial_mapping=initial_mapping)
        result.tool = self.name
        result.metadata["router_only"] = True
        return result


def route_with_optimal_layout(tool: QLSTool,
                              instance: QubikosInstance) -> QLSResult:
    """Run ``tool`` on ``instance`` from its known-optimal initial mapping.

    Equivalent pipeline: ``Pipeline([FixedLayoutPass(instance.mapping()),
    ToolPass(tool)])``.
    """
    pipeline = _pinned_pipeline(tool, instance.mapping(),
                                name=f"{tool.name}+optimal")
    result = pipeline.run(instance.circuit, instance.coupling())
    result.tool = tool.name
    result.metadata["router_only"] = True
    result.metadata["optimal_swaps"] = instance.optimal_swaps
    return result
