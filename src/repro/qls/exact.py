"""Exact SWAP-optimal layout synthesis via SAT (OLSQ2-style transition
encoding, solved through the pluggable :mod:`repro.sat.backend` protocol).

The encoding follows OLSQ2's transition model specialized to SWAP-count
optimality: ``k`` *transitions* separate ``k+1`` mapping *blocks*; at most
one SWAP fires per transition; every two-qubit gate is assigned to a block
in dependency order and must sit on a coupling edge under that block's
mapping.  ``optimal <= k`` iff the formula is satisfiable, so incrementing
``k`` from 0 until SAT yields the exact optimum (each UNSAT answer is a
machine-checked lower-bound proof).

Incremental k-search
--------------------
The sweep keeps **one** growing formula and **one** solver session.  Each
bound ``j`` adds only the new transition and mapping block, and its gate
completeness constraint ("every gate runs by block ``j``") is emitted
behind a per-bound *selector* variable as ``y(g,0) | ... | y(g,j) |
bound_j``.  Solving bound ``j`` under the assumption ``¬bound_j`` is then
equisatisfiable with the standalone ``j``-encoding — earlier bounds'
relaxed clauses are switched off through their free selectors — so the
``k = 0, 1, ...`` sweep runs through ``session.solve(assumptions=...)``
and learned clauses, VSIDS activity, and saved phases survive across
iterations instead of being rebuilt per ``k``.  Every UNSAT answer is
still a machine-checked lower bound for exactly the seed ``k``-encoding.

Cube-and-conquer
----------------
With ``workers``/``pool`` set, each ``k`` iteration splits on a
deterministic frontier — "coupling edge ``e`` swaps in transition 0" for
each edge plus a no-listed-edge cube (block-0 assignment of program qubit
0 when ``k = 0`` has no transitions) — and fans the cubes over the shared
:class:`repro.parallel.WorkerPool` via :func:`repro.sat.cube.solve_cubes`
(first-SAT-in-cube-order merge, all-UNSAT lower bounds, parent-side
serial fallback on pool casualties).

Pure-Python CDCL limits practical sizes to roughly 16 physical qubits /
30 two-qubit gates / k <= 6 — the same scalability wall the paper reports
for OLSQ2, just at a smaller constant; an external backend
(``backend="auto"`` with kissat/cadical/pysat installed) and multi-core
cube splitting push that frontier out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag
from ..circuit.gates import Gate
from ..obs import metrics as obs_metrics
from ..qubikos.mapping import Mapping
from ..sat.backend import SatBackend, SatSession, get_backend
from ..sat.cnf import CnfBuilder
from ..sat.cube import solve_cubes
from ..sat.types import Model, SolverResult
from .base import QLSError, QLSResult, QLSTool
from .validate import validate_transpiled

Edge = Tuple[int, int]


@dataclass
class ExactOutcome:
    """Result of an exact optimality search."""

    optimal_swaps: Optional[int]  # None if the budget ran out
    proven_lower_bound: int  # largest k with a verified UNSAT proof, plus one
    result: Optional[QLSResult]
    solver_stats: List[Dict[str, int]]
    timed_out: bool = False
    #: Engine counters summed over every k iteration (and every cube).
    totals: Dict[str, int] = field(default_factory=dict)
    #: Backend and search mode that produced this outcome.
    backend: str = "python"
    mode: str = "incremental"


class SatEncoder:
    """Builds the CNF for 'routable with at most k SWAPs'.

    Two construction modes share the same clause emitters:

    * ``selectors=False`` (default) — the complete ``k``-encoding, built
      eagerly in the constructor: the seed behaviour, used by the fresh
      per-k sweep and anything wanting a standalone formula.
    * ``selectors=True`` — incremental: the constructor encodes bound 0
      only; :meth:`extend_to` grows the formula one transition + block at
      a time, emitting each bound's completeness constraint behind a
      selector variable ``("bound", j)``.  :meth:`assumptions_for` turns
      a bound into its assumption literal and :meth:`cube_frontier`
      derives the deterministic cube split.
    """

    def __init__(self, skeleton: QuantumCircuit, coupling: CouplingGraph, k: int,
                 initial_mapping: Optional[Mapping] = None,
                 selectors: bool = False) -> None:
        self.coupling = coupling
        self.k = k
        self.selectors = selectors
        self.dag = DependencyDag.from_circuit(skeleton)
        self.num_program = skeleton.num_qubits
        self.num_physical = coupling.num_qubits
        if self.num_program > self.num_physical:
            raise QLSError("circuit larger than device")
        self.builder = CnfBuilder()
        self.initial_mapping = initial_mapping
        if selectors:
            self.built_k = -1
            self.extend_to(0)
        else:
            self._encode()
            self.built_k = k

    # -- encoding -------------------------------------------------------------

    def _x(self, q: int, p: int, t: int) -> int:
        return self.builder.var(("x", q, p, t))

    def _y(self, g: int, t: int) -> int:
        return self.builder.var(("y", g, t))

    def _z(self, g: int, t: int) -> int:
        return self.builder.var(("z", g, t))

    def _s(self, e: Edge, t: int) -> int:
        return self.builder.var(("s", e, t))

    def _bound(self, j: int) -> int:
        return self.builder.var(("bound", j))

    def _encode(self) -> None:
        """Eager complete encoding at bound ``self.k`` (seed behaviour)."""
        for t in range(self.k + 1):
            self._encode_block(t)
        for g in range(len(self.dag)):
            self.builder.at_least_one(
                [self._y(g, t) for t in range(self.k + 1)]
            )
        for t in range(self.k):
            self._encode_transition(t)

    def _encode_block(self, t: int) -> None:
        """Mapping block ``t``: well-formedness, gate placement in ``t``."""
        b = self.builder
        physical = range(self.num_physical)
        # Mapping well-formedness.
        for q in range(self.num_program):
            b.exactly_one([self._x(q, p, t) for p in physical])
        for p in physical:
            b.at_most_one([self._x(q, p, t) for q in range(self.num_program)])
        # Optional pinned initial mapping (router-only verification).
        if t == 0 and self.initial_mapping is not None:
            for q in range(self.num_program):
                b.add_unit(self._x(q, self.initial_mapping.phys(q), 0))
        # Gate-to-block bookkeeping and dependency order.
        for g in range(len(self.dag)):
            if t == 0:
                b.iff(self._z(g, 0), self._y(g, 0))
            else:
                b.iff_or(self._z(g, t), [self._z(g, t - 1), self._y(g, t)])
            for earlier_t in range(t):  # at most one block per gate
                b.add([-self._y(g, earlier_t), -self._y(g, t)])
        for earlier, later in self.dag.edges():
            b.implies(self._y(later, t), self._z(earlier, t))
        # Executability: a gate in block t sits on a coupling edge.
        for g in range(len(self.dag)):
            q1, q2 = self.dag.gates[g].qubits
            for p in physical:
                neighbors = [
                    self._x(q2, p2, t) for p2 in self.coupling.neighbors(p)
                ]
                b.add([-self._y(g, t), -self._x(q1, p, t)] + neighbors)

    def _encode_transition(self, t: int) -> None:
        """Transition ``t``: at most one SWAP; mapping evolves accordingly."""
        b = self.builder
        physical = range(self.num_physical)
        swaps = [self._s(e, t) for e in self.coupling.edges]
        b.at_most_one(swaps)
        moved = {p: b.var(("moved", p, t)) for p in physical}
        for p in physical:
            incident = [
                self._s(e, t) for e in self.coupling.edges if p in e
            ]
            b.iff_or(moved[p], incident)
        for q in range(self.num_program):
            for p in physical:
                # Unmoved qubits stay put.
                b.add([moved[p], -self._x(q, p, t), self._x(q, p, t + 1)])
                b.add([moved[p], self._x(q, p, t), -self._x(q, p, t + 1)])
        for e in self.coupling.edges:
            a, c = e
            s_var = self._s(e, t)
            for q in range(self.num_program):
                # Swapped endpoints exchange occupants.
                b.add([-s_var, -self._x(q, a, t), self._x(q, c, t + 1)])
                b.add([-s_var, -self._x(q, c, t), self._x(q, a, t + 1)])

    # -- incremental growth and restriction -----------------------------------

    def extend_to(self, k_active: int) -> None:
        """Grow the incremental formula to bound ``k_active``.

        Adds one transition + mapping block per missing bound, plus the
        bound's relaxed completeness clause ``y(g,0)|...|y(g,j)|bound_j``
        per gate.  Clauses only accumulate — an open solver session can
        be fed ``builder.clauses[n:]`` after each call.
        """
        if not self.selectors:
            raise QLSError("extend_to needs selectors=True")
        if not 0 <= k_active <= self.k:
            raise QLSError(
                f"bound {k_active} outside the encoded range 0..{self.k}"
            )
        b = self.builder
        while self.built_k < k_active:
            t = self.built_k + 1
            if t > 0:
                self._encode_transition(t - 1)
            self._encode_block(t)
            for g in range(len(self.dag)):
                b.add([self._y(g, tt) for tt in range(t + 1)]
                      + [self._bound(t)])
            self.built_k = t

    def assumptions_for(self, k_active: int) -> List[int]:
        """Assumption literals restricting the formula to ``<= k_active``
        swaps: force this bound's completeness selector off (gates must
        then run by block ``k_active``; earlier bounds' clauses stay
        satisfiable through their free selectors)."""
        if not self.selectors:
            raise QLSError("assumptions_for needs selectors=True")
        if not 0 <= k_active <= self.built_k:
            raise QLSError(
                f"bound {k_active} not built (built to {self.built_k}); "
                f"call extend_to first"
            )
        return [-self._bound(k_active)]

    def cube_frontier(self, k_active: int,
                      max_cubes: Optional[int] = None) -> List[Tuple[int, ...]]:
        """Deterministic, exhaustive cube split for the ``k_active`` solve.

        For ``k_active >= 1`` the frontier is the first transition's swap
        choice: one cube per coupling edge (``s(e, 0)`` true) plus a final
        cube asserting none of the listed edges swap first — exhaustive by
        construction, mutually exclusive via the per-transition
        at-most-one.  For ``k_active = 0`` there are no transitions, so
        the split falls back to program qubit 0's block-0 placement
        (exhaustive via its exactly-one group).  ``max_cubes`` caps the
        fan-out: surplus branches fold into the final complement cube.
        """
        if k_active > self.built_k:
            raise QLSError(
                f"bound {k_active} not built (built to {self.built_k})"
            )
        if k_active >= 1 and self.coupling.edges:
            branch = [self._s(e, 0) for e in self.coupling.edges]
        elif self.num_program >= 1:
            branch = [self._x(0, p, 0) for p in range(self.num_physical)]
        else:
            return [()]  # empty circuit: a single unconditional cube
        if max_cubes is not None and max_cubes >= 1:
            branch = branch[: max(max_cubes - 1, 0)]
        cubes: List[Tuple[int, ...]] = [(lit,) for lit in branch]
        cubes.append(tuple(-lit for lit in branch))
        return cubes

    # -- decoding ------------------------------------------------------------

    def decode(self, model: Model) -> Tuple[Mapping, List[Tuple[Optional[Edge], List[int]]]]:
        """Extract (initial mapping, [(swap_before_block, gate_list)] )."""
        b = self.builder
        blocks = self.built_k + 1  # only decode blocks actually encoded
        mappings: List[Mapping] = []
        for t in range(blocks):
            assignment = {}
            for q in range(self.num_program):
                for p in range(self.num_physical):
                    if b.value(model, ("x", q, p, t)):
                        assignment[q] = p
                        break
            mappings.append(Mapping(assignment))
        schedule: List[Tuple[Optional[Edge], List[int]]] = []
        for t in range(blocks):
            swap: Optional[Edge] = None
            if t > 0:
                for e in self.coupling.edges:
                    if b.value(model, ("s", e, t - 1)):
                        swap = e
                        break
            gates = [
                g for g in range(len(self.dag))
                if b.value(model, ("y", g, t))
            ]
            schedule.append((swap, gates))
        return mappings[0], schedule


class ExactSolver(QLSTool):
    """Incremental-k exact SWAP-count solver with pluggable backends.

    * ``backend`` — a :func:`repro.sat.backend.get_backend` name.  The
      default ``"python"`` is deterministic and always available;
      ``"auto"`` upgrades to kissat/cadical/pysat when installed (the
      answer is backend-independent, and decoded circuits are re-validated
      regardless).
    * ``workers`` / ``pool`` — enable cube-and-conquer: cubes of each
      ``k`` iteration fan over a private pool of ``workers`` processes,
      or a shared :class:`repro.parallel.WorkerPool` (assign ``pool``).
    * ``incremental=False`` re-encodes and cold-starts per ``k`` — the
      seed behaviour, kept as the benchmark baseline.
    """

    name = "exact"

    def __init__(self, max_swaps: int = 8,
                 conflict_limit: Optional[int] = None,
                 time_limit: Optional[float] = None,
                 backend: str = "python",
                 workers: Optional[int] = None,
                 pool=None,
                 max_cubes: Optional[int] = None,
                 incremental: bool = True) -> None:
        if workers is not None and workers < 0:
            raise QLSError("workers must be non-negative")
        self.max_swaps = max_swaps
        self.conflict_limit = conflict_limit
        self.time_limit = time_limit
        self.backend = backend
        self.workers = workers
        self.pool = pool
        self.max_cubes = max_cubes
        self.incremental = incremental

    # -- search modes ---------------------------------------------------------

    def solve(self, circuit: QuantumCircuit, coupling: CouplingGraph,
              initial_mapping: Optional[Mapping] = None,
              start_k: int = 0) -> ExactOutcome:
        """Find the exact optimum by incrementing the SWAP bound.

        One deadline (``time_limit`` from entry) governs the whole sweep:
        every k iteration — and every cube within it — receives the
        remaining budget, so encoding time and earlier iterations are
        charged against the same clock.
        """
        skeleton = circuit.without_single_qubit_gates()
        deadline = time.monotonic() + self.time_limit \
            if self.time_limit else None
        engine = get_backend(self.backend)
        pool, own_pool = self._resolve_pool()
        try:
            if pool is not None:
                return self._solve_cube(skeleton, coupling, initial_mapping,
                                        start_k, deadline, pool)
            if self.incremental and engine.incremental:
                return self._solve_incremental(skeleton, coupling,
                                               initial_mapping, start_k,
                                               deadline, engine)
            return self._solve_fresh(skeleton, coupling, initial_mapping,
                                     start_k, deadline, engine)
        finally:
            if own_pool:
                pool.shutdown()

    def _resolve_pool(self):
        """(pool, owns_it): a shared pool wins; ``workers>1`` builds one."""
        if self.pool is not None:
            return self.pool, False
        if self.workers is not None and self.workers > 1:
            from ..parallel import WorkerPool  # lazy: qls stays pool-free
            return WorkerPool(self.workers), True
        return None, False

    @staticmethod
    def _remaining(deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return deadline - time.monotonic()

    def _solve_incremental(self, skeleton: QuantumCircuit,
                           coupling: CouplingGraph,
                           initial_mapping: Optional[Mapping],
                           start_k: int, deadline: Optional[float],
                           engine: SatBackend) -> ExactOutcome:
        """One growing formula, one session: each bound feeds only its new
        transition/block clauses to the open session and solves under the
        bound's selector assumption, so learned clauses survive the sweep."""
        stats: List[Dict[str, int]] = []
        if start_k > self.max_swaps:
            return self._finish(None, self.max_swaps + 1, None, stats,
                                timed_out=True)
        encoder = SatEncoder(skeleton, coupling, self.max_swaps,
                             initial_mapping, selectors=True)
        encoder.extend_to(max(start_k, 0))
        session = engine.session(encoder.builder.num_vars,
                                 encoder.builder.clauses)
        fed = len(encoder.builder.clauses)
        previous = session.stats()
        for k in range(start_k, self.max_swaps + 1):
            remaining = self._remaining(deadline)
            if remaining is not None and remaining <= 0:
                return self._finish(None, k, None, stats, timed_out=True)
            encoder.extend_to(k)
            clauses = encoder.builder.clauses
            while fed < len(clauses):
                session.add_clause(clauses[fed])
                fed += 1
            outcome = session.solve(encoder.assumptions_for(k),
                                    conflict_limit=self.conflict_limit,
                                    time_limit=remaining)
            current = session.stats()
            stats.append({"k": k, **_delta(previous, current)})
            previous = current
            if outcome is SolverResult.UNKNOWN:
                return self._finish(None, k, None, stats, timed_out=True)
            if outcome is SolverResult.SAT:
                result = self._build_result(skeleton, coupling, encoder,
                                            session.model(), k)
                return self._finish(k, k, result, stats)
        return self._finish(None, self.max_swaps + 1, None, stats,
                            timed_out=True)

    def _solve_fresh(self, skeleton: QuantumCircuit, coupling: CouplingGraph,
                     initial_mapping: Optional[Mapping], start_k: int,
                     deadline: Optional[float],
                     engine: SatBackend) -> ExactOutcome:
        """Per-k re-encode + cold session: the seed strategy, kept for
        non-incremental backends and as the benchmark baseline."""
        stats: List[Dict[str, int]] = []
        for k in range(start_k, self.max_swaps + 1):
            if (r := self._remaining(deadline)) is not None and r <= 0:
                return self._finish(None, k, None, stats, timed_out=True,
                                    mode="fresh")
            encoder = SatEncoder(skeleton, coupling, k, initial_mapping)
            session = engine.session(encoder.builder.num_vars,
                                     encoder.builder.clauses)
            outcome = session.solve(conflict_limit=self.conflict_limit,
                                    time_limit=self._remaining(deadline))
            stats.append({"k": k, **session.stats()})
            if outcome is SolverResult.UNKNOWN:
                return self._finish(None, k, None, stats, timed_out=True,
                                    mode="fresh")
            if outcome is SolverResult.SAT:
                result = self._build_result(skeleton, coupling, encoder,
                                            session.model(), k)
                return self._finish(k, k, result, stats, mode="fresh")
        return self._finish(None, self.max_swaps + 1, None, stats,
                            timed_out=True, mode="fresh")

    def _solve_cube(self, skeleton: QuantumCircuit, coupling: CouplingGraph,
                    initial_mapping: Optional[Mapping], start_k: int,
                    deadline: Optional[float], pool) -> ExactOutcome:
        """Cube-and-conquer each k iteration over the worker pool."""
        stats: List[Dict[str, int]] = []
        if start_k > self.max_swaps:
            return self._finish(None, self.max_swaps + 1, None, stats,
                                timed_out=True, mode="cube")
        encoder = SatEncoder(skeleton, coupling, self.max_swaps,
                             initial_mapping, selectors=True)
        builder = encoder.builder
        for k in range(start_k, self.max_swaps + 1):
            remaining = self._remaining(deadline)
            if remaining is not None and remaining <= 0:
                return self._finish(None, k, None, stats, timed_out=True,
                                    mode="cube")
            encoder.extend_to(k)
            cubes = encoder.cube_frontier(k, self.max_cubes)
            merged = solve_cubes(
                builder.num_vars, builder.clauses, cubes,
                base_assumptions=encoder.assumptions_for(k),
                backend=self.backend, pool=pool,
                conflict_limit=self.conflict_limit, deadline=deadline,
            )
            entry = {"k": k, "cubes": len(cubes),
                     "pool_fallbacks": merged.pool_fallbacks}
            for cube_stat in merged.cube_stats:
                for key, value in cube_stat.items():
                    if key in ("cube", "result"):
                        continue
                    if isinstance(value, int):
                        entry[key] = entry.get(key, 0) + value
            if merged.decided_by is not None:
                entry["decided_by"] = merged.decided_by
            stats.append(entry)
            if merged.result is SolverResult.UNKNOWN:
                return self._finish(None, k, None, stats, timed_out=True,
                                    mode="cube")
            if merged.result is SolverResult.SAT:
                result = self._build_result(skeleton, coupling, encoder,
                                            merged.model, k)
                return self._finish(k, k, result, stats, mode="cube")
        return self._finish(None, self.max_swaps + 1, None, stats,
                            timed_out=True, mode="cube")

    def _finish(self, optimal: Optional[int], lower_bound: int,
                result: Optional[QLSResult], stats: List[Dict[str, int]],
                timed_out: bool = False,
                mode: str = "incremental") -> ExactOutcome:
        totals: Dict[str, int] = {}
        for entry in stats:
            for key, value in entry.items():
                if key != "k" and isinstance(value, int):
                    totals[key] = totals.get(key, 0) + value
        if obs_metrics._ACTIVE is not None:
            conflicts = obs_metrics.counter(
                "repro_sat_conflicts_total",
                "CDCL conflicts per swap bound k.")
            restarts = obs_metrics.counter(
                "repro_sat_restarts_total",
                "CDCL restarts per swap bound k.")
            for entry in stats:
                bound = str(entry.get("k", "?"))
                conflicts.inc(entry.get("conflicts", 0), bound=bound)
                restarts.inc(entry.get("restarts", 0), bound=bound)
            obs_metrics.counter(
                "repro_sat_solves_total",
                "Exact QLS searches by outcome and mode.",
            ).inc(outcome="timeout" if timed_out else
                  ("optimal" if optimal is not None else "exhausted"),
                  mode=mode)
        return ExactOutcome(optimal, lower_bound, result, stats,
                            timed_out=timed_out, totals=totals,
                            backend=self.backend, mode=mode)

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        outcome = self.solve(circuit, coupling, initial_mapping)
        if outcome.result is None:
            raise QLSError(
                f"exact solver exhausted its budget (k <= {self.max_swaps})"
            )
        return outcome.result

    def _build_result(self, skeleton: QuantumCircuit, coupling: CouplingGraph,
                      encoder: SatEncoder, model: Model, k: int) -> QLSResult:
        initial, schedule = encoder.decode(model)
        mapping = initial.copy()
        transpiled = QuantumCircuit(coupling.num_qubits, name=f"{skeleton.name}_exact")
        swap_count = 0
        dag = encoder.dag
        for swap, gate_ids in schedule:
            if swap is not None:
                transpiled.append(Gate("swap", swap))
                mapping.swap_physical(*swap)
                swap_count += 1
            # Emit the block's gates in dependency (original) order.
            for g in sorted(gate_ids):
                gate = dag.gates[g]
                transpiled.append(gate.remap({
                    gate[0]: mapping.phys(gate[0]),
                    gate[1]: mapping.phys(gate[1]),
                }))
        # Machine-check the decoded schedule regardless of which backend
        # produced the model: an external engine's answer is only trusted
        # after the replay validates.
        report = validate_transpiled(skeleton, transpiled, coupling, initial)
        if not report.valid:
            raise QLSError(
                f"decoded exact schedule failed validation ({report.error}); "
                f"backend {self.backend!r} returned an inconsistent model"
            )
        if swap_count > k:
            raise QLSError(
                f"decoded schedule uses {swap_count} swaps, above the "
                f"proven bound k={k}"
            )
        return QLSResult(
            tool=self.name, circuit=transpiled, initial_mapping=initial,
            swap_count=swap_count, metadata={"k": k},
        )


def _delta(previous: Dict[str, int], current: Dict[str, int]) -> Dict[str, int]:
    """Per-iteration engine counters from two cumulative snapshots."""
    out: Dict[str, int] = {}
    for key, value in current.items():
        if isinstance(value, int):
            base = previous.get(key, 0)
            out[key] = value - base if isinstance(base, int) else value
    return out


def brute_force_optimal(circuit: QuantumCircuit, coupling: CouplingGraph,
                        max_swaps: int = 4) -> Optional[int]:
    """Exhaustive cross-check for tiny devices (<= ~6 physical qubits).

    Searches all initial mappings and all SWAP schedules up to ``max_swaps``
    via breadth-first iterative deepening on (mapping, executed-set) states.
    Returns the optimum, or None if above ``max_swaps``.
    """
    import itertools

    skeleton = circuit.without_single_qubit_gates()
    dag = DependencyDag.from_circuit(skeleton)
    n_p = coupling.num_qubits
    n_q = skeleton.num_qubits
    if n_p > 8:
        raise QLSError("brute force is for tiny devices only")
    pair_of = [dag.gates[g].qubit_pair() for g in range(len(dag))]
    preds = [dag.predecessors(g) for g in range(len(dag))]

    def closure(mapping: Tuple[int, ...], done: int) -> int:
        changed = True
        while changed:
            changed = False
            for g in range(len(dag)):
                if done & (1 << g):
                    continue
                if any(not (done & (1 << p)) for p in preds[g]):
                    continue
                a, b = pair_of[g]
                if coupling.has_edge(mapping[a], mapping[b]):
                    done |= 1 << g
                    changed = True
        return done

    from collections import deque

    full = (1 << len(dag)) - 1
    queue = deque()
    seen = set()
    for perm in itertools.permutations(range(n_p), n_q):
        done = closure(perm, 0)
        if done == full:
            return 0
        state = (perm, done)
        if state not in seen:
            seen.add(state)
            queue.append((perm, done, 0))
    # Breadth-first over SWAP count: the first completed state is optimal.
    while queue:
        mapping, done, used = queue.popleft()
        if used >= max_swaps:
            continue
        for a, b in coupling.edges:
            new_mapping = tuple(
                b if p == a else a if p == b else p for p in mapping
            )
            new_done = closure(new_mapping, done)
            if new_done == full:
                return used + 1
            state = (new_mapping, new_done)
            if state not in seen:
                seen.add(state)
                queue.append((new_mapping, new_done, used + 1))
    return None
