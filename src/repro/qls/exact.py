"""Exact SWAP-optimal layout synthesis via SAT (OLSQ2-style transition
encoding, solved by the project's own CDCL solver).

The encoding follows OLSQ2's transition model specialized to SWAP-count
optimality: ``k`` *transitions* separate ``k+1`` mapping *blocks*; at most
one SWAP fires per transition; every two-qubit gate is assigned to a block
in dependency order and must sit on a coupling edge under that block's
mapping.  ``optimal <= k`` iff the formula is satisfiable, so incrementing
``k`` from 0 until SAT yields the exact optimum (each UNSAT answer is a
machine-checked lower-bound proof).

Variables (all allocated through :class:`repro.sat.CnfBuilder`):

* ``("x", q, p, t)``    — program qubit ``q`` on physical ``p`` in block ``t``;
* ``("y", g, t)``       — gate ``g`` executes in block ``t``;
* ``("z", g, t)``       — gate ``g`` executes in some block ``<= t``;
* ``("s", e, t)``       — transition ``t`` swaps coupling edge ``e``;
* ``("moved", p, t)``   — some transition-``t`` SWAP touches ``p``.

Pure-Python CDCL limits practical sizes to roughly 16 physical qubits /
30 two-qubit gates / k <= 5 — the same scalability wall the paper reports
for OLSQ2, just at a smaller constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping
from ..sat.cnf import CnfBuilder
from ..sat.solver import CdclSolver
from ..sat.types import Model, SolverResult
from .base import QLSError, QLSResult, QLSTool

Edge = Tuple[int, int]


@dataclass
class ExactOutcome:
    """Result of an exact optimality search."""

    optimal_swaps: Optional[int]  # None if the budget ran out
    proven_lower_bound: int  # largest k with a verified UNSAT proof, plus one
    result: Optional[QLSResult]
    solver_stats: List[Dict[str, int]]
    timed_out: bool = False


class SatEncoder:
    """Builds the CNF for 'routable with at most k SWAPs'."""

    def __init__(self, skeleton: QuantumCircuit, coupling: CouplingGraph, k: int,
                 initial_mapping: Optional[Mapping] = None) -> None:
        self.coupling = coupling
        self.k = k
        self.dag = DependencyDag.from_circuit(skeleton)
        self.num_program = skeleton.num_qubits
        self.num_physical = coupling.num_qubits
        if self.num_program > self.num_physical:
            raise QLSError("circuit larger than device")
        self.builder = CnfBuilder()
        self.initial_mapping = initial_mapping
        self._encode()

    # -- encoding -------------------------------------------------------------

    def _x(self, q: int, p: int, t: int) -> int:
        return self.builder.var(("x", q, p, t))

    def _y(self, g: int, t: int) -> int:
        return self.builder.var(("y", g, t))

    def _z(self, g: int, t: int) -> int:
        return self.builder.var(("z", g, t))

    def _s(self, e: Edge, t: int) -> int:
        return self.builder.var(("s", e, t))

    def _encode(self) -> None:
        b = self.builder
        blocks = self.k + 1
        physical = range(self.num_physical)
        # Mapping well-formedness per block.
        for t in range(blocks):
            for q in range(self.num_program):
                b.exactly_one([self._x(q, p, t) for p in physical])
            for p in physical:
                b.at_most_one([self._x(q, p, t) for q in range(self.num_program)])
        # Optional pinned initial mapping (router-only verification).
        if self.initial_mapping is not None:
            for q in range(self.num_program):
                b.add_unit(self._x(q, self.initial_mapping.phys(q), 0))
        # Gate-to-block assignment and dependency order.
        for g in range(len(self.dag)):
            b.exactly_one([self._y(g, t) for t in range(blocks)])
            for t in range(blocks):
                if t == 0:
                    b.iff(self._z(g, 0), self._y(g, 0))
                else:
                    b.iff_or(self._z(g, t), [self._z(g, t - 1), self._y(g, t)])
        for earlier, later in self.dag.edges():
            for t in range(blocks):
                b.implies(self._y(later, t), self._z(earlier, t))
        # Executability: a gate in block t sits on a coupling edge.
        for g in range(len(self.dag)):
            q1, q2 = self.dag.gates[g].qubits
            for t in range(blocks):
                for p in physical:
                    neighbors = [
                        self._x(q2, p2, t) for p2 in self.coupling.neighbors(p)
                    ]
                    b.add([-self._y(g, t), -self._x(q1, p, t)] + neighbors)
        # Transitions: at most one SWAP each; mapping evolves accordingly.
        for t in range(self.k):
            swaps = [self._s(e, t) for e in self.coupling.edges]
            b.at_most_one(swaps)
            moved = {
                p: b.var(("moved", p, t)) for p in physical
            }
            for p in physical:
                incident = [
                    self._s(e, t) for e in self.coupling.edges if p in e
                ]
                b.iff_or(moved[p], incident)
            for q in range(self.num_program):
                for p in physical:
                    # Unmoved qubits stay put.
                    b.add([moved[p], -self._x(q, p, t), self._x(q, p, t + 1)])
                    b.add([moved[p], self._x(q, p, t), -self._x(q, p, t + 1)])
            for e in self.coupling.edges:
                a, c = e
                s_var = self._s(e, t)
                for q in range(self.num_program):
                    # Swapped endpoints exchange occupants.
                    b.add([-s_var, -self._x(q, a, t), self._x(q, c, t + 1)])
                    b.add([-s_var, -self._x(q, c, t), self._x(q, a, t + 1)])

    # -- decoding ------------------------------------------------------------

    def decode(self, model: Model) -> Tuple[Mapping, List[Tuple[Optional[Edge], List[int]]]]:
        """Extract (initial mapping, [(swap_before_block, gate_list)] )."""
        b = self.builder
        blocks = self.k + 1
        mappings: List[Mapping] = []
        for t in range(blocks):
            assignment = {}
            for q in range(self.num_program):
                for p in range(self.num_physical):
                    if b.value(model, ("x", q, p, t)):
                        assignment[q] = p
                        break
            mappings.append(Mapping(assignment))
        schedule: List[Tuple[Optional[Edge], List[int]]] = []
        for t in range(blocks):
            swap: Optional[Edge] = None
            if t > 0:
                for e in self.coupling.edges:
                    if b.value(model, ("s", e, t - 1)):
                        swap = e
                        break
            gates = [
                g for g in range(len(self.dag))
                if b.value(model, ("y", g, t))
            ]
            schedule.append((swap, gates))
        return mappings[0], schedule


class ExactSolver(QLSTool):
    """Incremental-k exact SWAP-count solver."""

    name = "exact"

    def __init__(self, max_swaps: int = 8,
                 conflict_limit: Optional[int] = None,
                 time_limit: Optional[float] = None) -> None:
        self.max_swaps = max_swaps
        self.conflict_limit = conflict_limit
        self.time_limit = time_limit

    def solve(self, circuit: QuantumCircuit, coupling: CouplingGraph,
              initial_mapping: Optional[Mapping] = None,
              start_k: int = 0) -> ExactOutcome:
        """Find the exact optimum by incrementing the SWAP bound."""
        skeleton = circuit.without_single_qubit_gates()
        stats: List[Dict[str, int]] = []
        deadline = time.monotonic() + self.time_limit if self.time_limit else None
        for k in range(start_k, self.max_swaps + 1):
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return ExactOutcome(None, k, None, stats, timed_out=True)
            encoder = SatEncoder(skeleton, coupling, k, initial_mapping)
            solver = CdclSolver()
            solver.add_clauses(encoder.builder.clauses)
            outcome = solver.solve(
                conflict_limit=self.conflict_limit, time_limit=remaining
            )
            stats.append({"k": k, **solver.stats})
            if outcome is SolverResult.UNKNOWN:
                return ExactOutcome(None, k, None, stats, timed_out=True)
            if outcome is SolverResult.SAT:
                result = self._build_result(
                    skeleton, coupling, encoder, solver.model(), k
                )
                return ExactOutcome(k, k, result, stats)
        return ExactOutcome(None, self.max_swaps + 1, None, stats, timed_out=True)

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        outcome = self.solve(circuit, coupling, initial_mapping)
        if outcome.result is None:
            raise QLSError(
                f"exact solver exhausted its budget (k <= {self.max_swaps})"
            )
        return outcome.result

    def _build_result(self, skeleton: QuantumCircuit, coupling: CouplingGraph,
                      encoder: SatEncoder, model: Model, k: int) -> QLSResult:
        initial, schedule = encoder.decode(model)
        mapping = initial.copy()
        transpiled = QuantumCircuit(coupling.num_qubits, name=f"{skeleton.name}_exact")
        swap_count = 0
        dag = encoder.dag
        for swap, gate_ids in schedule:
            if swap is not None:
                transpiled.append(Gate("swap", swap))
                mapping.swap_physical(*swap)
                swap_count += 1
            # Emit the block's gates in dependency (original) order.
            for g in sorted(gate_ids):
                gate = dag.gates[g]
                transpiled.append(gate.remap({
                    gate[0]: mapping.phys(gate[0]),
                    gate[1]: mapping.phys(gate[1]),
                }))
        return QLSResult(
            tool=self.name, circuit=transpiled, initial_mapping=initial,
            swap_count=swap_count, metadata={"k": k},
        )


def brute_force_optimal(circuit: QuantumCircuit, coupling: CouplingGraph,
                        max_swaps: int = 4) -> Optional[int]:
    """Exhaustive cross-check for tiny devices (<= ~6 physical qubits).

    Searches all initial mappings and all SWAP schedules up to ``max_swaps``
    via breadth-first iterative deepening on (mapping, executed-set) states.
    Returns the optimum, or None if above ``max_swaps``.
    """
    import itertools

    skeleton = circuit.without_single_qubit_gates()
    dag = DependencyDag.from_circuit(skeleton)
    n_p = coupling.num_qubits
    n_q = skeleton.num_qubits
    if n_p > 8:
        raise QLSError("brute force is for tiny devices only")
    pair_of = [dag.gates[g].qubit_pair() for g in range(len(dag))]
    preds = [dag.predecessors(g) for g in range(len(dag))]

    def closure(mapping: Tuple[int, ...], done: int) -> int:
        changed = True
        while changed:
            changed = False
            for g in range(len(dag)):
                if done & (1 << g):
                    continue
                if any(not (done & (1 << p)) for p in preds[g]):
                    continue
                a, b = pair_of[g]
                if coupling.has_edge(mapping[a], mapping[b]):
                    done |= 1 << g
                    changed = True
        return done

    from collections import deque

    full = (1 << len(dag)) - 1
    queue = deque()
    seen = set()
    for perm in itertools.permutations(range(n_p), n_q):
        done = closure(perm, 0)
        if done == full:
            return 0
        state = (perm, done)
        if state not in seen:
            seen.add(state)
            queue.append((perm, done, 0))
    # Breadth-first over SWAP count: the first completed state is optimal.
    while queue:
        mapping, done, used = queue.popleft()
        if used >= max_swaps:
            continue
        for a, b in coupling.edges:
            new_mapping = tuple(
                b if p == a else a if p == b else p for p in mapping
            )
            new_done = closure(new_mapping, done)
            if new_done == full:
                return used + 1
            state = (new_mapping, new_done)
            if state not in seen:
                seen.add(state)
                queue.append((new_mapping, new_done, used + 1))
    return None
