"""SABRE routing and layout (Li, Ding, Xie — ASPLOS 2019), with the
LightSABRE cost model the paper's case study dissects.

The router repeatedly executes every front-layer gate whose operands are
adjacent, then scores candidate SWAPs (edges touching a front-layer qubit)
with the three-component cost the paper describes in Section IV-C:

* **basic** — mean distance of front-layer gate operands after the SWAP;
* **lookahead** — mean distance over the *extended set* (the next
  ``extended_set_size`` gates past the front layer), weighted by
  ``extended_set_weight`` (Qiskit defaults: 20 gates, weight 0.5);
* **decay** — a multiplicative penalty on recently swapped qubits that
  breaks oscillations.

The paper's proposed remedy — decaying the extended-set contribution with
distance from the execution layer — is implemented as ``lookahead_decay``
(per-rank geometric weight); ``None`` reproduces stock behaviour.

Initial mappings use SABRE's forward–backward refinement; the LightSABRE
evaluation mode (multiple randomized trials, best by SWAP count) lives in
:mod:`repro.qls.lightsabre`.

Performance architecture
------------------------
The routing inner loop is the hot path of every benchmark, so it is built
for throughput while staying *bit-identical* to the reference formulation
(fixed seeds produce the same routed circuits and swap counts):

* the sorted front layer and the extended set are memoised on
  :class:`repro.circuit.dag.ExecutionFrontier` and recomputed only when a
  gate executes — a stall window of many SWAP decisions reuses one BFS;
* :meth:`SabreCostModel.best_swap` is an allocation-free scoring fast path:
  per-gate operand pairs come from ``DependencyDag.op_pairs`` flat arrays,
  mapping lookups are O(1) reads of the live ``Mapping.forward`` /
  ``Mapping.backward`` permutation arrays, and — because hop-count sums are
  exact small-integer arithmetic — each candidate SWAP is scored by
  adjusting only the distance terms its two endpoints touch instead of
  re-summing the whole front and extended set (``score``/``score_all``
  remain as the introspection API for the case study);
* :class:`SabreLayout` builds the skeleton :class:`DependencyDag`, its
  reverse, and one :class:`SabreCostModel` per ``run`` and threads them
  through all ``2 * layout_passes + 1`` ``route()`` calls;
* ``record_mappings=True`` logs compact swap deltas in a
  :class:`repro.qubikos.mapping.MappingTimeline` instead of deep-copying the
  mapping per executed gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag, ExecutionFrontier
from ..circuit.gates import Gate
from ..obs import metrics as obs_metrics
from ..obs import profile as obs_profile
from ..qubikos.mapping import Mapping, MappingTimeline
from .base import QLSError, QLSResult, QLSTool
from .reinsert import split_one_qubit_gates, weave_transpiled

Edge = Tuple[int, int]


@dataclass(frozen=True)
class SabreParameters:
    """Tunables of the SABRE heuristic (Qiskit-compatible defaults)."""

    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    decay_increment: float = 0.001
    decay_reset_interval: int = 5
    lookahead_decay: Optional[float] = None  # paper's Section IV-C remedy
    layout_passes: int = 3  # forward/backward rounds for the initial mapping


@dataclass(frozen=True)
class SwapScore:
    """Cost breakdown for one candidate SWAP (used by the case study)."""

    swap: Edge
    basic: float
    lookahead: float
    decay: float
    total: float


class SabreCostModel:
    """Scores candidate SWAPs; shared by the router and the case study."""

    def __init__(self, coupling: CouplingGraph, params: SabreParameters) -> None:
        self.coupling = coupling
        self.params = params
        # Plain nested lists: scalar indexing is several times faster than
        # numpy element access, and scoring is the routing hot path.  The
        # list form is cached on the coupling graph, shared by every model.
        self._dist = coupling.distance_rows

    def candidate_swaps(self, dag: DependencyDag, frontier: ExecutionFrontier,
                        mapping: Mapping) -> List[Edge]:
        """Coupling edges touching a physical qubit hosting a front operand."""
        candidates = set()
        for node in frontier.front:
            for q in dag.gates[node].qubits:
                p = mapping.phys(q)
                for nbr in self.coupling.neighbors(p):
                    candidates.add((p, nbr) if p < nbr else (nbr, p))
        return sorted(candidates)

    def score(self, dag: DependencyDag, mapping: Mapping, swap: Edge,
              front: Sequence[int], extended: Sequence[int],
              decay: Dict[int, float]) -> SwapScore:
        """The LightSABRE cost of applying ``swap`` to ``mapping``."""
        p1, p2 = swap

        def position(q: int) -> int:
            p = mapping.phys(q)
            if p == p1:
                return p2
            if p == p2:
                return p1
            return p

        dist = self._dist
        basic = 0.0
        for node in front:
            g = dag.gates[node]
            basic += dist[position(g[0])][position(g[1])]
        basic /= max(len(front), 1)

        lookahead = 0.0
        if extended:
            weight_sum = 0.0
            rank_weight = 1.0
            for node in extended:
                g = dag.gates[node]
                lookahead += rank_weight * dist[position(g[0])][position(g[1])]
                weight_sum += rank_weight
                if self.params.lookahead_decay is not None:
                    rank_weight *= self.params.lookahead_decay
            lookahead /= weight_sum
        decay_factor = max(
            decay.get(mapping.prog(p1), 1.0) if mapping.has_prog_at(p1) else 1.0,
            decay.get(mapping.prog(p2), 1.0) if mapping.has_prog_at(p2) else 1.0,
        )
        total = decay_factor * (basic + self.params.extended_set_weight * lookahead)
        return SwapScore(swap=swap, basic=basic, lookahead=lookahead,
                         decay=decay_factor, total=total)

    def score_all(self, dag: DependencyDag, frontier: ExecutionFrontier,
                  mapping: Mapping, decay: Optional[Dict[int, float]] = None
                  ) -> List[SwapScore]:
        """Scores for every candidate SWAP at the current routing state."""
        decay = decay if decay is not None else {}
        front = sorted(frontier.front)
        extended = frontier.following_gates(self.params.extended_set_size)
        return [
            self.score(dag, mapping, swap, front, extended, decay)
            for swap in self.candidate_swaps(dag, frontier, mapping)
        ]

    def best_swap(self, dag: DependencyDag, frontier: ExecutionFrontier,
                  mapping: Mapping, decay: Dict[int, float],
                  rng: random.Random) -> Tuple[Edge, float]:
        """Allocation-free scoring fast path: ``(chosen swap, best total)``.

        Produces exactly the swap :meth:`score_all` + min + ``rng.choice``
        would select (ties included, with the same rng consumption), but
        builds no :class:`SwapScore` per candidate.  With the default
        uniform lookahead weighting, distance sums are exact small-integer
        arithmetic, so each candidate's cost is derived from shared base
        sums by adjusting only the gates whose operands sit on the swapped
        pair — O(touched gates) instead of O(front + extended) per
        candidate — with bit-identical totals.
        """
        params = self.params
        dist = self._dist
        pi = mapping.forward
        back = mapping.backward
        nback = len(back)
        ops = dag.op_pairs
        front = frontier.front_sorted()
        extended = frontier.following_gates(params.extended_set_size)

        fpos = [(pi[ops[n][0]], pi[ops[n][1]]) for n in front]
        epos = [(pi[ops[n][0]], pi[ops[n][1]]) for n in extended]

        candidates = self.candidate_swaps(dag, frontier, mapping)
        if not candidates:
            raise QLSError("no candidate swaps; disconnected coupling graph?")

        nf = max(len(front), 1)
        ne = len(epos)
        ew = params.extended_set_weight
        ld = params.lookahead_decay
        totals: List[float] = []

        if ld is None:
            # Exact-integer incremental path (stock LightSABRE weighting).
            base_f = 0
            touch_f: Dict[int, List[int]] = {}
            for i, (pa, pb) in enumerate(fpos):
                base_f += dist[pa][pb]
                touch_f.setdefault(pa, []).append(i)
                touch_f.setdefault(pb, []).append(i)
            base_e = 0
            touch_e: Dict[int, List[int]] = {}
            for i, (pa, pb) in enumerate(epos):
                base_e += dist[pa][pb]
                touch_e.setdefault(pa, []).append(i)
                touch_e.setdefault(pb, []).append(i)
            for p1, p2 in candidates:
                df = 0
                l1 = touch_f.get(p1)
                l2 = touch_f.get(p2)
                touched = (set(l1) | set(l2)) if (l1 and l2) else (l1 or l2 or ())
                for i in touched:
                    pa, pb = fpos[i]
                    npa = p2 if pa == p1 else (p1 if pa == p2 else pa)
                    npb = p2 if pb == p1 else (p1 if pb == p2 else pb)
                    df += dist[npa][npb] - dist[pa][pb]
                basic = (base_f + df) / nf
                if ne:
                    de = 0
                    l1 = touch_e.get(p1)
                    l2 = touch_e.get(p2)
                    touched = (set(l1) | set(l2)) if (l1 and l2) else (l1 or l2 or ())
                    for i in touched:
                        pa, pb = epos[i]
                        npa = p2 if pa == p1 else (p1 if pa == p2 else pa)
                        npb = p2 if pb == p1 else (p1 if pb == p2 else pb)
                        de += dist[npa][npb] - dist[pa][pb]
                    lookahead = (base_e + de) / ne
                else:
                    lookahead = 0.0
                if decay:
                    q1 = back[p1] if p1 < nback else -1
                    q2 = back[p2] if p2 < nback else -1
                    d1 = decay.get(q1, 1.0) if q1 >= 0 else 1.0
                    d2 = decay.get(q2, 1.0) if q2 >= 0 else 1.0
                    decay_factor = d1 if d1 >= d2 else d2
                    totals.append(decay_factor * (basic + ew * lookahead))
                else:
                    totals.append(basic + ew * lookahead)
        else:
            # Geometric per-rank weights are float products; replicate the
            # reference summation order exactly instead of using deltas.
            for p1, p2 in candidates:
                basic = 0.0
                for pa, pb in fpos:
                    npa = p2 if pa == p1 else (p1 if pa == p2 else pa)
                    npb = p2 if pb == p1 else (p1 if pb == p2 else pb)
                    basic += dist[npa][npb]
                basic /= nf
                lookahead = 0.0
                if epos:
                    weight_sum = 0.0
                    rank_weight = 1.0
                    for pa, pb in epos:
                        npa = p2 if pa == p1 else (p1 if pa == p2 else pa)
                        npb = p2 if pb == p1 else (p1 if pb == p2 else pb)
                        lookahead += rank_weight * dist[npa][npb]
                        weight_sum += rank_weight
                        rank_weight *= ld
                    lookahead /= weight_sum
                q1 = back[p1] if p1 < nback else -1
                q2 = back[p2] if p2 < nback else -1
                d1 = decay.get(q1, 1.0) if q1 >= 0 else 1.0
                d2 = decay.get(q2, 1.0) if q2 >= 0 else 1.0
                decay_factor = d1 if d1 >= d2 else d2
                totals.append(decay_factor * (basic + ew * lookahead))

        best_total = min(totals)
        threshold = best_total + 1e-12
        ties = [candidates[i] for i, t in enumerate(totals) if t <= threshold]
        return rng.choice(ties), best_total


@dataclass
class RoutingOutcome:
    """Raw result of one forward routing pass.

    ``mapping_at`` is indexable by original two-qubit gate index and yields
    the :class:`Mapping` in force when that gate executed: either a plain
    dict of mappings (tools that snapshot eagerly) or a
    :class:`~repro.qubikos.mapping.MappingTimeline` (SABRE's compact
    swap-delta log, reconstructed on demand).
    """

    routed: List[Tuple[int, Gate]]  # (original 2q index, physical gate); -1 = SWAP
    swap_count: int
    final_mapping: Mapping
    mapping_at: Union[MappingTimeline, Dict[int, Mapping]]
    fallback_swaps: int = 0


def route(circuit: Optional[QuantumCircuit], coupling: CouplingGraph,
          mapping: Mapping, params: SabreParameters, rng: random.Random,
          record_mappings: bool = False,
          dag: Optional[DependencyDag] = None,
          model: Optional[SabreCostModel] = None) -> RoutingOutcome:
    """One SABRE forward routing pass; ``mapping`` is consumed (mutated).

    ``dag``/``model`` let callers that route the same skeleton repeatedly
    (layout passes, best-of-k trials) reuse the dependency DAG and cost
    model instead of rebuilding them per pass.  A given ``dag`` is the
    routing input and ``circuit`` may be ``None``; otherwise the DAG is
    built from ``circuit``.
    """
    if dag is None:
        if circuit is None:
            raise ValueError("route() needs a circuit or a prebuilt dag")
        dag = DependencyDag.from_circuit(circuit)
    if model is None:
        model = SabreCostModel(coupling, params)
    frontier = ExecutionFrontier(dag)
    decay: Dict[int, float] = {}
    routed: List[Tuple[int, Gate]] = []
    timeline = MappingTimeline(mapping) if record_mappings else None
    swap_count = 0
    fallback_swaps = 0
    swaps_since_progress = 0
    swaps_since_reset = 0
    # Livelock bound: generous multiple of how far anything could need to move.
    stall_limit = max(16, 6 * coupling.diameter())

    pi = mapping.forward  # live π array, mutated in place by swap_physical
    back = mapping.backward
    ops = dag.op_pairs
    gates = dag.gates
    adj = [coupling.neighbors(p) for p in range(coupling.num_qubits)]
    npi = len(pi)
    for a, b in ops:
        if a >= npi or pi[a] < 0 or b >= npi or pi[b] < 0:
            raise QLSError(f"program qubit of gate pair ({a}, {b}) is unmapped")

    def execute_ready() -> bool:
        # Executes satisfiable gates in ascending node order, pass by pass.
        # After the first full sweep only newly released gates can become
        # satisfiable (the mapping is unchanged), so later sweeps iterate
        # the released lists ExecutionFrontier.execute returns instead of
        # re-sorting the whole front layer.
        progressed = False
        worklist: Sequence[int] = frontier.front_sorted()
        while worklist:
            released_all: List[int] = []
            for node in worklist:
                a, b = ops[node]
                p1, p2 = pi[a], pi[b]
                if p2 in adj[p1]:
                    released_all.extend(frontier.execute(node))
                    routed.append((node, gates[node].remap({a: p1, b: p2})))
                    if timeline is not None:
                        timeline.record_gate(node)
                    progressed = True
            worklist = sorted(released_all)
        return progressed

    while not frontier.done():
        if execute_ready():
            swaps_since_progress = 0
            decay.clear()
            swaps_since_reset = 0
            continue
        if frontier.done():
            break
        if swaps_since_progress >= stall_limit:
            # Escape hatch: greedily walk one front gate's operands together.
            swaps_done = _force_route_one(dag, frontier, coupling, mapping,
                                          routed, timeline)
            swap_count += swaps_done
            fallback_swaps += swaps_done
            swaps_since_progress = 0
            if obs_profile._ACTIVE is not None:
                obs_profile._ACTIVE.bump("sabre.forced_swaps", swaps_done)
            continue
        (p1, p2), _total = model.best_swap(dag, frontier, mapping, decay, rng)
        mapping.swap_physical(p1, p2)
        routed.append((-1, Gate("swap", (p1, p2))))
        if timeline is not None:
            timeline.record_swap(p1, p2)
        swap_count += 1
        swaps_since_progress += 1
        swaps_since_reset += 1
        if obs_profile._ACTIVE is not None:
            obs_profile._ACTIVE.bump("sabre.swaps")
        for p in (p1, p2):
            q = back[p] if p < len(back) else -1
            if q >= 0:
                decay[q] = decay.get(q, 1.0) + params.decay_increment
        if swaps_since_reset >= params.decay_reset_interval:
            decay.clear()
            swaps_since_reset = 0
    if obs_metrics._ACTIVE is not None:
        obs_metrics.counter(
            "repro_router_swaps_total",
            "SWAP gates inserted by routing passes.",
        ).inc(swap_count, router="sabre")
    return RoutingOutcome(
        routed=routed, swap_count=swap_count, final_mapping=mapping,
        mapping_at=timeline if timeline is not None else {},
        fallback_swaps=fallback_swaps,
    )


def _force_route_one(dag: DependencyDag, frontier: ExecutionFrontier,
                     coupling: CouplingGraph, mapping: Mapping,
                     routed: List[Tuple[int, Gate]],
                     timeline: Optional[MappingTimeline] = None) -> int:
    """Livelock escape: route the closest front gate along a shortest path."""
    best_node = min(
        frontier.front,
        key=lambda n: coupling.distance(
            mapping.phys(dag.gates[n][0]), mapping.phys(dag.gates[n][1])
        ),
    )
    g = dag.gates[best_node]
    path = coupling.shortest_path(mapping.phys(g[0]), mapping.phys(g[1]))
    swaps = 0
    # Walk the first operand toward the second until adjacent.
    for a, b in zip(path, path[1:-1]):
        mapping.swap_physical(a, b)
        routed.append((-1, Gate("swap", (a, b))))
        if timeline is not None:
            timeline.record_swap(a, b)
        swaps += 1
    return swaps


class SabreLayout(QLSTool):
    """Full SABRE: forward–backward initial-mapping search plus routing.

    The skeleton dependency DAG, its reverse, and the cost model are built
    once per :meth:`run` and shared by all ``2 * layout_passes + 1``
    routing passes.
    """

    name = "sabre"

    def __init__(self, params: Optional[SabreParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or SabreParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        rng = random.Random(self.seed)
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError(
                f"circuit needs {circuit.num_qubits} qubits; device has "
                f"{coupling.num_qubits}"
            )
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        dag = DependencyDag.from_circuit(skeleton)
        model = SabreCostModel(coupling, self.params)
        if initial_mapping is None:
            mapping = self._search_initial_mapping(skeleton, dag, coupling,
                                                   model, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()
        outcome = route(skeleton, coupling, mapping, self.params, rng,
                        record_mappings=True, dag=dag, model=model)
        transpiled = weave_transpiled(
            coupling.num_qubits, outcome.routed, bundles, tail,
            mapping_at=outcome.mapping_at, final_mapping=outcome.final_mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name,
            circuit=transpiled,
            initial_mapping=start_mapping,
            swap_count=outcome.swap_count,
            metadata={"fallback_swaps": outcome.fallback_swaps},
        )

    def _search_initial_mapping(self, skeleton: QuantumCircuit,
                                dag: DependencyDag,
                                coupling: CouplingGraph,
                                model: SabreCostModel,
                                rng: random.Random) -> Mapping:
        """Forward–backward passes: each pass's final mapping seeds the next."""
        mapping = _random_initial_mapping(skeleton.num_qubits, coupling, rng)
        reversed_dag = dag.reversed()
        for _ in range(self.params.layout_passes):
            outcome = route(skeleton, coupling, mapping.copy(), self.params,
                            rng, dag=dag, model=model)
            mapping = outcome.final_mapping
            outcome = route(None, coupling, mapping.copy(), self.params, rng,
                            dag=reversed_dag, model=model)
            mapping = outcome.final_mapping
        return mapping


def _random_initial_mapping(num_program: int, coupling: CouplingGraph,
                            rng: random.Random) -> Mapping:
    physical = list(range(coupling.num_qubits))
    rng.shuffle(physical)
    return Mapping({q: physical[q] for q in range(num_program)})
