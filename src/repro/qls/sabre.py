"""SABRE routing and layout (Li, Ding, Xie — ASPLOS 2019), with the
LightSABRE cost model the paper's case study dissects.

The router repeatedly executes every front-layer gate whose operands are
adjacent, then scores candidate SWAPs (edges touching a front-layer qubit)
with the three-component cost the paper describes in Section IV-C:

* **basic** — mean distance of front-layer gate operands after the SWAP;
* **lookahead** — mean distance over the *extended set* (the next
  ``extended_set_size`` gates past the front layer), weighted by
  ``extended_set_weight`` (Qiskit defaults: 20 gates, weight 0.5);
* **decay** — a multiplicative penalty on recently swapped qubits that
  breaks oscillations.

The paper's proposed remedy — decaying the extended-set contribution with
distance from the execution layer — is implemented as ``lookahead_decay``
(per-rank geometric weight); ``None`` reproduces stock behaviour.

Initial mappings use SABRE's forward–backward refinement; the LightSABRE
evaluation mode (multiple randomized trials, best by SWAP count) lives in
:mod:`repro.qls.lightsabre`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag, ExecutionFrontier
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping
from .base import QLSError, QLSResult, QLSTool
from .reinsert import split_one_qubit_gates, weave_transpiled

Edge = Tuple[int, int]


@dataclass(frozen=True)
class SabreParameters:
    """Tunables of the SABRE heuristic (Qiskit-compatible defaults)."""

    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    decay_increment: float = 0.001
    decay_reset_interval: int = 5
    lookahead_decay: Optional[float] = None  # paper's Section IV-C remedy
    layout_passes: int = 3  # forward/backward rounds for the initial mapping


@dataclass(frozen=True)
class SwapScore:
    """Cost breakdown for one candidate SWAP (used by the case study)."""

    swap: Edge
    basic: float
    lookahead: float
    decay: float
    total: float


class SabreCostModel:
    """Scores candidate SWAPs; shared by the router and the case study."""

    def __init__(self, coupling: CouplingGraph, params: SabreParameters) -> None:
        self.coupling = coupling
        self.params = params
        # Plain nested lists: scalar indexing is several times faster than
        # numpy element access, and scoring is the routing hot path.
        self._dist = coupling.distance_matrix.tolist()

    def candidate_swaps(self, dag: DependencyDag, frontier: ExecutionFrontier,
                        mapping: Mapping) -> List[Edge]:
        """Coupling edges touching a physical qubit hosting a front operand."""
        candidates = set()
        for node in frontier.front:
            for q in dag.gates[node].qubits:
                p = mapping.phys(q)
                for nbr in self.coupling.neighbors(p):
                    candidates.add((p, nbr) if p < nbr else (nbr, p))
        return sorted(candidates)

    def score(self, dag: DependencyDag, mapping: Mapping, swap: Edge,
              front: Sequence[int], extended: Sequence[int],
              decay: Dict[int, float]) -> SwapScore:
        """The LightSABRE cost of applying ``swap`` to ``mapping``."""
        p1, p2 = swap

        def position(q: int) -> int:
            p = mapping.phys(q)
            if p == p1:
                return p2
            if p == p2:
                return p1
            return p

        dist = self._dist
        basic = 0.0
        for node in front:
            g = dag.gates[node]
            basic += dist[position(g[0])][position(g[1])]
        basic /= max(len(front), 1)

        lookahead = 0.0
        if extended:
            weight_sum = 0.0
            rank_weight = 1.0
            for node in extended:
                g = dag.gates[node]
                lookahead += rank_weight * dist[position(g[0])][position(g[1])]
                weight_sum += rank_weight
                if self.params.lookahead_decay is not None:
                    rank_weight *= self.params.lookahead_decay
            lookahead /= weight_sum
        decay_factor = max(
            decay.get(mapping.prog(p1), 1.0) if mapping.has_prog_at(p1) else 1.0,
            decay.get(mapping.prog(p2), 1.0) if mapping.has_prog_at(p2) else 1.0,
        )
        total = decay_factor * (basic + self.params.extended_set_weight * lookahead)
        return SwapScore(swap=swap, basic=basic, lookahead=lookahead,
                         decay=decay_factor, total=total)

    def score_all(self, dag: DependencyDag, frontier: ExecutionFrontier,
                  mapping: Mapping, decay: Optional[Dict[int, float]] = None
                  ) -> List[SwapScore]:
        """Scores for every candidate SWAP at the current routing state."""
        decay = decay if decay is not None else {}
        front = sorted(frontier.front)
        extended = frontier.following_gates(self.params.extended_set_size)
        return [
            self.score(dag, mapping, swap, front, extended, decay)
            for swap in self.candidate_swaps(dag, frontier, mapping)
        ]


@dataclass
class RoutingOutcome:
    """Raw result of one forward routing pass."""

    routed: List[Tuple[int, Gate]]  # (original 2q index, physical gate); -1 = SWAP
    swap_count: int
    final_mapping: Mapping
    mapping_at: Dict[int, Mapping]
    fallback_swaps: int = 0


def route(circuit: QuantumCircuit, coupling: CouplingGraph, mapping: Mapping,
          params: SabreParameters, rng: random.Random,
          record_mappings: bool = False) -> RoutingOutcome:
    """One SABRE forward routing pass; ``mapping`` is consumed (mutated)."""
    dag = DependencyDag.from_circuit(circuit)
    frontier = ExecutionFrontier(dag)
    model = SabreCostModel(coupling, params)
    decay: Dict[int, float] = {}
    routed: List[Tuple[int, Gate]] = []
    mapping_at: Dict[int, Mapping] = {}
    swap_count = 0
    fallback_swaps = 0
    swaps_since_progress = 0
    swaps_since_reset = 0
    # Livelock bound: generous multiple of how far anything could need to move.
    stall_limit = max(16, 6 * coupling.diameter())

    def execute_ready() -> bool:
        progressed = False
        again = True
        while again:
            again = False
            for node in sorted(frontier.front):
                g = dag.gates[node]
                p1, p2 = mapping.phys(g[0]), mapping.phys(g[1])
                if coupling.has_edge(p1, p2):
                    frontier.execute(node)
                    routed.append((node, g.remap({g[0]: p1, g[1]: p2})))
                    if record_mappings:
                        mapping_at[node] = mapping.copy()
                    again = True
                    progressed = True
        return progressed

    while not frontier.done():
        if execute_ready():
            swaps_since_progress = 0
            decay.clear()
            swaps_since_reset = 0
            continue
        if frontier.done():
            break
        if swaps_since_progress >= stall_limit:
            # Escape hatch: greedily walk one front gate's operands together.
            swaps_done = _force_route_one(dag, frontier, coupling, mapping, routed)
            swap_count += swaps_done
            fallback_swaps += swaps_done
            swaps_since_progress = 0
            continue
        front = sorted(frontier.front)
        extended = frontier.following_gates(params.extended_set_size)
        scores = [
            model.score(dag, mapping, swap, front, extended, decay)
            for swap in model.candidate_swaps(dag, frontier, mapping)
        ]
        if not scores:
            raise QLSError("no candidate swaps; disconnected coupling graph?")
        best_total = min(s.total for s in scores)
        best = [s for s in scores if s.total <= best_total + 1e-12]
        choice = rng.choice(best)
        p1, p2 = choice.swap
        mapping.swap_physical(p1, p2)
        routed.append((-1, Gate("swap", (p1, p2))))
        swap_count += 1
        swaps_since_progress += 1
        swaps_since_reset += 1
        for p in (p1, p2):
            if mapping.has_prog_at(p):
                q = mapping.prog(p)
                decay[q] = decay.get(q, 1.0) + params.decay_increment
        if swaps_since_reset >= params.decay_reset_interval:
            decay.clear()
            swaps_since_reset = 0
    return RoutingOutcome(
        routed=routed, swap_count=swap_count, final_mapping=mapping,
        mapping_at=mapping_at, fallback_swaps=fallback_swaps,
    )


def _force_route_one(dag: DependencyDag, frontier: ExecutionFrontier,
                     coupling: CouplingGraph, mapping: Mapping,
                     routed: List[Tuple[int, Gate]]) -> int:
    """Livelock escape: route the closest front gate along a shortest path."""
    best_node = min(
        frontier.front,
        key=lambda n: coupling.distance(
            mapping.phys(dag.gates[n][0]), mapping.phys(dag.gates[n][1])
        ),
    )
    g = dag.gates[best_node]
    path = coupling.shortest_path(mapping.phys(g[0]), mapping.phys(g[1]))
    swaps = 0
    # Walk the first operand toward the second until adjacent.
    for a, b in zip(path, path[1:-1]):
        mapping.swap_physical(a, b)
        routed.append((-1, Gate("swap", (a, b))))
        swaps += 1
    return swaps


class SabreLayout(QLSTool):
    """Full SABRE: forward–backward initial-mapping search plus routing."""

    name = "sabre"

    def __init__(self, params: Optional[SabreParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or SabreParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        rng = random.Random(self.seed)
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError(
                f"circuit needs {circuit.num_qubits} qubits; device has "
                f"{coupling.num_qubits}"
            )
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        if initial_mapping is None:
            mapping = self._search_initial_mapping(skeleton, coupling, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()
        outcome = route(skeleton, coupling, mapping, self.params, rng,
                        record_mappings=True)
        transpiled = weave_transpiled(
            coupling.num_qubits, outcome.routed, bundles, tail,
            mapping_at=outcome.mapping_at, final_mapping=outcome.final_mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name,
            circuit=transpiled,
            initial_mapping=start_mapping,
            swap_count=outcome.swap_count,
            metadata={"fallback_swaps": outcome.fallback_swaps},
        )

    def _search_initial_mapping(self, skeleton: QuantumCircuit,
                                coupling: CouplingGraph,
                                rng: random.Random) -> Mapping:
        """Forward–backward passes: each pass's final mapping seeds the next."""
        mapping = _random_initial_mapping(skeleton.num_qubits, coupling, rng)
        reversed_skeleton = QuantumCircuit(
            skeleton.num_qubits, list(reversed(skeleton.gates))
        )
        for _ in range(self.params.layout_passes):
            outcome = route(skeleton, coupling, mapping.copy(), self.params, rng)
            mapping = outcome.final_mapping
            outcome = route(reversed_skeleton, coupling, mapping.copy(),
                            self.params, rng)
            mapping = outcome.final_mapping
        return mapping


def _random_initial_mapping(num_program: int, coupling: CouplingGraph,
                            rng: random.Random) -> Mapping:
    physical = list(range(coupling.num_qubits))
    rng.shuffle(physical)
    return Mapping({q: physical[q] for q in range(num_program)})
