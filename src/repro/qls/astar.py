"""Layer-partitioned A* mapper (after Zulehner, Paler, Wille — TCAD 2019),
the algorithm family behind MQT QMAP's heuristic mapper.

The circuit's two-qubit skeleton is cut into ASAP layers (dependency-
independent gate groups).  For each layer, an A* search over SWAP sequences
transforms the current mapping into one where *every* gate of the layer is
executable, minimizing SWAPs-so-far plus a distance-sum heuristic.  The
search is locally optimal per layer but globally greedy — the structural
reason the paper measures large optimality gaps for this tool class on
QUBIKOS circuits, whose optimal routing requires global foresight.

A node-expansion budget keeps worst-case runtime bounded; on exhaustion the
layer falls back to shortest-path greedy routing (counted in metadata).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping
from .base import QLSError, QLSResult, QLSTool
from .initial import greedy_degree_mapping
from .reinsert import split_one_qubit_gates, weave_transpiled

Edge = Tuple[int, int]


@dataclass(frozen=True)
class AStarParameters:
    """Search tunables.

    The heuristic weight > 1 makes the search weighted-A* (greedier but
    much faster on 100+-qubit devices); per-layer optimality is already
    only a heuristic globally, so the trade is cheap — and matches QMAP's
    own lookahead-weighted cost.
    """

    expansion_budget: int = 2000  # A* node expansions per layer
    heuristic_weight: float = 2.0  # >1 trades per-layer optimality for speed


class AStarMapper(QLSTool):
    """Per-layer A* qubit mapper (QMAP-heuristic stand-in)."""

    name = "astar"

    def __init__(self, params: Optional[AStarParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or AStarParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError("circuit larger than device")
        rng = random.Random(self.seed)
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        if initial_mapping is None:
            mapping = greedy_degree_mapping(skeleton, coupling, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()

        dag = DependencyDag.from_circuit(skeleton)
        layers = dag.layers()
        routed: List[Tuple[int, Gate]] = []
        mapping_at: Dict[int, Mapping] = {}
        swap_count = 0
        fallbacks = 0
        for layer in layers:
            gates = [dag.gates[node] for node in layer]
            swaps = self._solve_layer(coupling, mapping, gates)
            if swaps is None:
                # Budget exhausted: route and emit the layer's gates one by
                # one (they are qubit-disjoint, so per-gate greedy is safe).
                fallbacks += 1
                swap_count += self._greedy_emit_layer(
                    coupling, mapping, dag, layer, routed, mapping_at
                )
                continue
            for p1, p2 in swaps:
                mapping.swap_physical(p1, p2)
                routed.append((-1, Gate("swap", (p1, p2))))
                swap_count += 1
            for node in layer:
                g = dag.gates[node]
                p1, p2 = mapping.phys(g[0]), mapping.phys(g[1])
                if not coupling.has_edge(p1, p2):
                    raise QLSError("layer solve left a gate unexecutable")
                routed.append((node, g.remap({g[0]: p1, g[1]: p2})))
                mapping_at[node] = mapping.copy()

        transpiled = weave_transpiled(
            coupling.num_qubits, routed, bundles, tail,
            mapping_at=mapping_at, final_mapping=mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name, circuit=transpiled,
            initial_mapping=start_mapping, swap_count=swap_count,
            metadata={"layer_fallbacks": fallbacks, "layers": len(layers)},
        )

    # -- per-layer search -----------------------------------------------------

    def _solve_layer(self, coupling: CouplingGraph, mapping: Mapping,
                     gates: Sequence[Gate]) -> Optional[List[Edge]]:
        """A* for the SWAP sequence making every layer gate executable.

        Returns the SWAP list, or None when the expansion budget runs out.
        """
        dist = coupling.distance_matrix.tolist()
        relevant = sorted({q for g in gates for q in g.qubits})
        pairs = [(g[0], g[1]) for g in gates]

        def positions_key(m: Dict[int, int]) -> Tuple[int, ...]:
            return tuple(m[q] for q in relevant)

        def heuristic(m: Dict[int, int]) -> float:
            return self.params.heuristic_weight * sum(
                max(0, dist[m[a]][m[b]] - 1) for a, b in pairs
            )

        def satisfied(m: Dict[int, int]) -> bool:
            return all(coupling.has_edge(m[a], m[b]) for a, b in pairs)

        start = {q: mapping.phys(q) for q in relevant}
        if satisfied(start):
            return []

        counter = itertools.count()
        open_heap: List[Tuple[float, int, Dict[int, int], List[Edge]]] = []
        heapq.heappush(open_heap, (heuristic(start), next(counter), start, []))
        best_cost: Dict[Tuple[int, ...], int] = {positions_key(start): 0}
        expansions = 0
        while open_heap and expansions < self.params.expansion_budget:
            _, _, state, path = heapq.heappop(open_heap)
            if satisfied(state):
                return path
            expansions += 1
            occupied = {p: q for q, p in state.items()}
            # Swaps on edges touching at least one relevant qubit.
            for q in relevant:
                p = state[q]
                for nbr in coupling.neighbors(p):
                    edge = (p, nbr) if p < nbr else (nbr, p)
                    successor = dict(state)
                    successor[q] = nbr
                    other = occupied.get(nbr)
                    if other is not None and other in successor:
                        successor[other] = p
                    key = positions_key(successor)
                    cost = len(path) + 1
                    if best_cost.get(key, 1 << 30) <= cost:
                        continue
                    best_cost[key] = cost
                    heapq.heappush(open_heap, (
                        cost + heuristic(successor), next(counter),
                        successor, path + [edge],
                    ))
        # Budget exhausted: signal the caller to use per-gate greedy routing.
        return None

    @staticmethod
    def _greedy_emit_layer(coupling: CouplingGraph, mapping: Mapping,
                           dag: DependencyDag, layer: Sequence[int],
                           routed: List[Tuple[int, Gate]],
                           mapping_at: Dict[int, Mapping]) -> int:
        """Route and emit each layer gate in turn (fallback path).

        Emitting gates one at a time keeps the transpilation valid even
        though later walks may separate earlier pairs again.
        """
        swap_count = 0
        for node in layer:
            g = dag.gates[node]
            while not coupling.has_edge(mapping.phys(g[0]), mapping.phys(g[1])):
                path = coupling.shortest_path(
                    mapping.phys(g[0]), mapping.phys(g[1])
                )
                mapping.swap_physical(path[0], path[1])
                routed.append((-1, Gate("swap", (path[0], path[1]))))
                swap_count += 1
            routed.append((node, g.remap({
                g[0]: mapping.phys(g[0]), g[1]: mapping.phys(g[1])
            })))
            mapping_at[node] = mapping.copy()
        return swap_count
