"""Layer-partitioned A* mapper (after Zulehner, Paler, Wille — TCAD 2019),
the algorithm family behind MQT QMAP's heuristic mapper.

The circuit's two-qubit skeleton is cut into ASAP layers (dependency-
independent gate groups).  For each layer, an A* search over SWAP sequences
transforms the current mapping into one where *every* gate of the layer is
executable, minimizing SWAPs-so-far plus a distance-sum heuristic.  The
search is locally optimal per layer but globally greedy — the structural
reason the paper measures large optimality gaps for this tool class on
QUBIKOS circuits, whose optimal routing requires global foresight.

A node-expansion budget keeps worst-case runtime bounded; on exhaustion the
layer falls back to shortest-path greedy routing (counted in metadata).

Performance architecture
------------------------
The per-layer search gets the SABRE-engine treatment (see
:mod:`repro.qls.sabre`) while staying *bit-identical* to the reference
formulation — fixed seeds reproduce the golden swap counts and circuit
hashes in ``tests/qls/test_perf_equivalence.py``:

* distances come from the cached :attr:`CouplingGraph.distance_rows`
  nested lists, fetched once per ``run`` — the reference re-ran
  ``distance_matrix.tolist()`` (O(n²)) for every layer;
* the distance heuristic is maintained *incrementally in exact integers*:
  each search node carries its unweighted distance sum, and a successor
  adjusts only the layer pairs touching the one or two qubits the SWAP
  moved (O(touched) instead of O(layer pairs) per successor).  Because a
  layer's qubits occupy distinct physical slots, every pair distance is
  ≥ 1 and the goal test collapses to ``distance_sum == 0`` — no more
  all-pairs adjacency scan per popped node;
* mapping snapshots use the compact swap-delta
  :class:`~repro.qubikos.mapping.MappingTimeline` instead of deep-copying
  the mapping per executed gate.

(The companion vectorised numpy scoring path for 200+-qubit devices lives
in :mod:`repro.qls.tketlike`, whose bulk candidate scoring is the shape
numpy rewards; the A* inner loop is a heap search whose per-successor work
is already O(touched pairs).)
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping, MappingTimeline
from .base import QLSError, QLSResult, QLSTool
from .initial import greedy_degree_mapping
from .reinsert import split_one_qubit_gates, weave_transpiled

Edge = Tuple[int, int]


@dataclass(frozen=True)
class AStarParameters:
    """Search tunables.

    The heuristic weight > 1 makes the search weighted-A* (greedier but
    much faster on 100+-qubit devices); per-layer optimality is already
    only a heuristic globally, so the trade is cheap — and matches QMAP's
    own lookahead-weighted cost.
    """

    expansion_budget: int = 2000  # A* node expansions per layer
    heuristic_weight: float = 2.0  # >1 trades per-layer optimality for speed


class AStarMapper(QLSTool):
    """Per-layer A* qubit mapper (QMAP-heuristic stand-in)."""

    name = "astar"

    def __init__(self, params: Optional[AStarParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or AStarParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError("circuit larger than device")
        rng = random.Random(self.seed)
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        if initial_mapping is None:
            mapping = greedy_degree_mapping(skeleton, coupling, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()

        dag = DependencyDag.from_circuit(skeleton)
        layers = dag.layers()
        dist = coupling.distance_rows  # cached nested lists, once per run
        timeline = MappingTimeline(mapping)
        routed: List[Tuple[int, Gate]] = []
        swap_count = 0
        fallbacks = 0
        for layer in layers:
            gates = [dag.gates[node] for node in layer]
            swaps = self._solve_layer(coupling, mapping, gates, dist)
            if swaps is None:
                # Budget exhausted: route and emit the layer's gates one by
                # one (they are qubit-disjoint, so per-gate greedy is safe).
                fallbacks += 1
                swap_count += self._greedy_emit_layer(
                    coupling, mapping, dag, layer, routed, timeline
                )
                continue
            for p1, p2 in swaps:
                mapping.swap_physical(p1, p2)
                routed.append((-1, Gate("swap", (p1, p2))))
                timeline.record_swap(p1, p2)
                swap_count += 1
            for node in layer:
                g = dag.gates[node]
                p1, p2 = mapping.phys(g[0]), mapping.phys(g[1])
                if not coupling.has_edge(p1, p2):
                    raise QLSError("layer solve left a gate unexecutable")
                routed.append((node, g.remap({g[0]: p1, g[1]: p2})))
                timeline.record_gate(node)

        transpiled = weave_transpiled(
            coupling.num_qubits, routed, bundles, tail,
            mapping_at=timeline, final_mapping=mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name, circuit=transpiled,
            initial_mapping=start_mapping, swap_count=swap_count,
            metadata={"layer_fallbacks": fallbacks, "layers": len(layers)},
        )

    # -- per-layer search -----------------------------------------------------

    def _solve_layer(self, coupling: CouplingGraph, mapping: Mapping,
                     gates: Sequence[Gate],
                     dist: Sequence[Sequence[int]]) -> Optional[List[Edge]]:
        """A* for the SWAP sequence making every layer gate executable.

        Returns the SWAP list, or None when the expansion budget runs out.

        Each heap entry carries ``hsum`` — the exact integer
        ``sum(dist - 1)`` over the layer's gate pairs under that node's
        positions.  Layer gates are qubit-disjoint and positions injective,
        so every pair distance is ≥ 1: the goal test is ``hsum == 0``, the
        A* heuristic is ``weight * hsum`` (bit-identical to the reference's
        ``weight * sum(max(0, d - 1))``), and successors update ``hsum`` by
        adjusting only the pairs touching the swapped qubits.
        """
        weight = self.params.heuristic_weight
        relevant = sorted({q for g in gates for q in g.qubits})
        index_of = {q: i for i, q in enumerate(relevant)}
        # A search state is the position tuple itself (positions of
        # ``relevant`` qubits, in ``relevant`` order) — the same tuple the
        # reference built separately as its visited-set key, so keys, push
        # order, and tie-breaks are unchanged while successor generation
        # drops the per-successor dict copy and key construction.
        pairs = [(index_of[g[0]], index_of[g[1]]) for g in gates]
        # Layer gates are qubit-disjoint (same-qubit gates are dependency-
        # ordered into different ASAP layers), so each relevant qubit
        # belongs to exactly one pair.
        pair_of = [0] * len(relevant)
        for index, (a, b) in enumerate(pairs):
            pair_of[a] = index
            pair_of[b] = index

        start = tuple(mapping.phys(q) for q in relevant)
        start_hsum = sum(dist[start[a]][start[b]] - 1 for a, b in pairs)
        if start_hsum == 0:
            return []

        neighbors = coupling.neighbors
        counter = itertools.count()
        open_heap: List[Tuple[float, int, Tuple[int, ...], List[Edge], int]] = []
        heapq.heappush(open_heap,
                       (weight * start_hsum, next(counter), start, [], start_hsum))
        best_cost: Dict[Tuple[int, ...], int] = {start: 0}
        expansions = 0
        while open_heap and expansions < self.params.expansion_budget:
            _, _, state, path, hsum = heapq.heappop(open_heap)
            if hsum == 0:
                return path
            expansions += 1
            occupied = {p: i for i, p in enumerate(state)}
            cost = len(path) + 1
            # Swaps on edges touching at least one relevant qubit.
            for qi in range(len(relevant)):
                p = state[qi]
                for nbr in neighbors(p):
                    edge = (p, nbr) if p < nbr else (nbr, p)
                    moved = list(state)
                    moved[qi] = nbr
                    oi = occupied.get(nbr)
                    if oi is not None:
                        moved[oi] = p
                    successor = tuple(moved)
                    if best_cost.get(successor, 1 << 30) <= cost:
                        continue
                    best_cost[successor] = cost
                    pair = pair_of[qi]
                    a, b = pairs[pair]
                    new_hsum = (hsum + dist[successor[a]][successor[b]]
                                - dist[state[a]][state[b]])
                    if oi is not None:
                        other_pair = pair_of[oi]
                        if other_pair != pair:
                            a, b = pairs[other_pair]
                            new_hsum += (dist[successor[a]][successor[b]]
                                         - dist[state[a]][state[b]])
                    heapq.heappush(open_heap, (
                        cost + weight * new_hsum, next(counter),
                        successor, path + [edge], new_hsum,
                    ))
        # Budget exhausted: signal the caller to use per-gate greedy routing.
        return None

    @staticmethod
    def _greedy_emit_layer(coupling: CouplingGraph, mapping: Mapping,
                           dag: DependencyDag, layer: Sequence[int],
                           routed: List[Tuple[int, Gate]],
                           timeline: MappingTimeline) -> int:
        """Route and emit each layer gate in turn (fallback path).

        Emitting gates one at a time keeps the transpilation valid even
        though later walks may separate earlier pairs again.
        """
        swap_count = 0
        for node in layer:
            g = dag.gates[node]
            while not coupling.has_edge(mapping.phys(g[0]), mapping.phys(g[1])):
                path = coupling.shortest_path(
                    mapping.phys(g[0]), mapping.phys(g[1])
                )
                mapping.swap_physical(path[0], path[1])
                routed.append((-1, Gate("swap", (path[0], path[1]))))
                timeline.record_swap(path[0], path[1])
                swap_count += 1
            routed.append((node, g.remap({
                g[0]: mapping.phys(g[0]), g[1]: mapping.phys(g[1])
            })))
            timeline.record_gate(node)
        return swap_count
