"""Multilevel layout synthesis (after Lin & Cong, ML-QLS, arXiv:2405.18371).

The multilevel scheme from the paper, at reduced engineering depth:

1. **Coarsening** — heavy-edge matching repeatedly contracts the circuit's
   weighted interaction graph (edge weight = number of gates on that pair)
   until it is small.
2. **Coarse placement** — clusters are placed greedily on the device,
   heaviest-connected first, near the device centre.
3. **Uncoarsening + refinement** — each level expands clusters onto free
   physical qubits adjacent to their parent's location, then a local-search
   pass swaps placements while the weighted distance objective improves.
4. **Routing** — a SABRE routing pass from the refined placement (the
   original tool couples refinement with its own router; the SABRE pass is
   the documented stand-in).
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.mapping import Mapping
from .base import QLSError, QLSResult, QLSTool
from .reinsert import split_one_qubit_gates, weave_transpiled
from .sabre import SabreParameters, route

Edge = Tuple[int, int]


@dataclass(frozen=True)
class MlqlsParameters:
    """Multilevel tunables."""

    coarsest_size: int = 10
    refinement_passes: int = 3
    routing: SabreParameters = SabreParameters()


class _Level:
    """One coarsening level: weighted graph + parent pointers."""

    def __init__(self, weights: Dict[Edge, int], nodes: List[int]) -> None:
        self.weights = weights
        self.nodes = nodes


class MlQls(QLSTool):
    """Multilevel placement + SABRE routing (ML-QLS stand-in)."""

    name = "mlqls"

    def __init__(self, params: Optional[MlqlsParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or MlqlsParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError("circuit larger than device")
        rng = random.Random(self.seed)
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        if initial_mapping is None:
            mapping = self._multilevel_placement(skeleton, coupling, rng)
        else:
            mapping = initial_mapping.copy()
        start_mapping = mapping.copy()
        outcome = route(skeleton, coupling, mapping, self.params.routing, rng,
                        record_mappings=True)
        transpiled = weave_transpiled(
            coupling.num_qubits, outcome.routed, bundles, tail,
            mapping_at=outcome.mapping_at, final_mapping=outcome.final_mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name, circuit=transpiled,
            initial_mapping=start_mapping, swap_count=outcome.swap_count,
            metadata={"fallback_swaps": outcome.fallback_swaps},
        )

    # -- placement pipeline --------------------------------------------------

    def _multilevel_placement(self, skeleton: QuantumCircuit,
                              coupling: CouplingGraph,
                              rng: random.Random) -> Mapping:
        weights: Dict[Edge, int] = defaultdict(int)
        for pair in skeleton.interaction_pairs():
            weights[pair] += 1
        nodes = list(range(skeleton.num_qubits))
        levels: List[Tuple[_Level, Dict[int, int]]] = []
        current = _Level(dict(weights), nodes)
        while len(current.nodes) > self.params.coarsest_size:
            coarser, parent = _heavy_edge_coarsen(current, rng)
            if len(coarser.nodes) == len(current.nodes):
                break  # no contractable edges left
            levels.append((current, parent))
            current = coarser
        placement = _place_coarse(current, coupling)
        placement = _refine(current, coupling, placement,
                            self.params.refinement_passes)
        # Uncoarsen: children inherit, then spread onto free neighbours.
        for finer, parent in reversed(levels):
            placement = _expand_level(finer, parent, placement, coupling)
            placement = _refine(finer, coupling, placement,
                                self.params.refinement_passes)
        return Mapping(placement)


def _heavy_edge_coarsen(level: _Level, rng: random.Random
                        ) -> Tuple[_Level, Dict[int, int]]:
    """One round of heavy-edge matching; returns (coarser level, parent map)."""
    order = sorted(level.weights.items(), key=lambda kv: -kv[1])
    matched: Set[int] = set()
    parent: Dict[int, int] = {}
    next_id = 0
    for (a, b), _w in order:
        if a in matched or b in matched:
            continue
        parent[a] = next_id
        parent[b] = next_id
        matched.add(a)
        matched.add(b)
        next_id += 1
    for node in level.nodes:
        if node not in parent:
            parent[node] = next_id
            next_id += 1
    coarse_weights: Dict[Edge, int] = defaultdict(int)
    for (a, b), w in level.weights.items():
        ca, cb = parent[a], parent[b]
        if ca != cb:
            key = (ca, cb) if ca < cb else (cb, ca)
            coarse_weights[key] += w
    return _Level(dict(coarse_weights), list(range(next_id))), parent


def _place_coarse(level: _Level, coupling: CouplingGraph) -> Dict[int, int]:
    """Greedy placement of the coarsest clusters near the device centre."""
    dist = coupling.distance_matrix
    center = int(dist.max(axis=1).argmin())
    strength: Dict[int, int] = defaultdict(int)
    for (a, b), w in level.weights.items():
        strength[a] += w
        strength[b] += w
    order = sorted(level.nodes, key=lambda n: -strength[n])
    placement: Dict[int, int] = {}
    used: Set[int] = set()
    for node in order:
        neighbors = [
            placement[other]
            for (a, b) in level.weights
            for other in ((b,) if a == node else (a,) if b == node else ())
            if other in placement
        ]
        candidates = [p for p in range(coupling.num_qubits) if p not in used]

        def preference(p: int) -> tuple:
            total = sum(int(dist[p, n]) for n in neighbors)
            return (total, int(dist[p, center]), -coupling.degree(p))

        best = min(candidates, key=preference)
        placement[node] = best
        used.add(best)
    return placement


def _expand_level(finer: _Level, parent: Dict[int, int],
                  coarse_placement: Dict[int, int],
                  coupling: CouplingGraph) -> Dict[int, int]:
    """Give each fine node a physical qubit near its cluster's location."""
    dist = coupling.distance_matrix
    children: Dict[int, List[int]] = defaultdict(list)
    for node, cluster in parent.items():
        children[cluster].append(node)
    placement: Dict[int, int] = {}
    used: Set[int] = set()
    # Heaviest clusters claim their neighbourhoods first.
    for cluster in sorted(children, key=lambda c: -len(children[c])):
        anchor = coarse_placement[cluster]
        for node in sorted(children[cluster]):
            candidates = [p for p in range(coupling.num_qubits) if p not in used]
            best = min(candidates, key=lambda p: (int(dist[p, anchor]), p))
            placement[node] = best
            used.add(best)
    return placement


def _refine(level: _Level, coupling: CouplingGraph,
            placement: Dict[int, int], passes: int) -> Dict[int, int]:
    """Pairwise-exchange local search on the weighted distance objective."""
    dist = coupling.distance_matrix
    incident: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for (a, b), w in level.weights.items():
        incident[a].append((b, w))
        incident[b].append((a, w))

    def node_cost(node: int, at: int) -> int:
        return sum(
            w * int(dist[at, placement[other]])
            for other, w in incident[node] if other != node
        )

    nodes = [n for n in level.nodes if incident[n]]
    occupant = {p: n for n, p in placement.items()}
    for _ in range(passes):
        improved = False
        for node in nodes:
            p_now = placement[node]
            base = node_cost(node, p_now)
            for p_new in range(coupling.num_qubits):
                if p_new == p_now:
                    continue
                other = occupant.get(p_new)
                if other is not None:
                    gain = (base - node_cost(node, p_new)
                            + node_cost(other, p_new) - node_cost(other, p_now))
                    # Exclude double-counted shared edge distortion.
                else:
                    gain = base - node_cost(node, p_new)
                if gain > 0:
                    placement[node] = p_new
                    occupant[p_new] = node
                    if other is not None:
                        placement[other] = p_now
                        occupant[p_now] = other
                    else:
                        del occupant[p_now]
                    improved = True
                    break
        if not improved:
            break
    return placement
