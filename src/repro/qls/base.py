"""Common interfaces for layout-synthesis tools.

Every tool consumes a logical circuit plus a coupling graph and produces a
:class:`QLSResult`: an initial mapping and a transpiled circuit whose gates
act on *physical* qubits, with explicit ``swap`` gates.  The contract is the
paper's: strip the SWAPs and un-map the gates and you recover a circuit
equivalent (up to dependency-preserving reordering) to the input.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.mapping import Mapping


#: Version of the ``QLSResult.to_dict`` wire schema.  Bump when the payload
#: shape changes incompatibly; ``from_dict`` rejects unknown versions.
RESULT_SCHEMA_VERSION = 1

#: Concrete result classes by type tag, for ``QLSResult.from_dict``
#: dispatch.  Subclasses living in higher layers (``PipelineResult``)
#: register themselves here instead of being imported, keeping the
#: dependency direction intact.
_RESULT_TYPES: Dict[str, type] = {}


def register_result_type(cls: type) -> type:
    """Class decorator: make ``cls`` reconstructable by ``from_dict``."""
    _RESULT_TYPES[cls.__name__] = cls
    return cls


@dataclass
class QLSResult:
    """Output of one layout-synthesis run."""

    tool: str
    circuit: QuantumCircuit  # physical qubits, explicit swap gates
    initial_mapping: Mapping
    swap_count: int
    runtime_seconds: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"QLSResult(tool={self.tool!r}, swaps={self.swap_count}, "
                f"gates={len(self.circuit)}, t={self.runtime_seconds:.3f}s)")

    # -- canonical serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Versioned JSON-safe form; ``from_dict`` round-trips bit-identically.

        Subclasses extend the payload via :meth:`_extra_dict` and register
        themselves with :func:`register_result_type` so the base
        ``from_dict`` reconstructs the right class from the ``type`` tag.
        """
        payload: Dict[str, object] = {
            "schema": RESULT_SCHEMA_VERSION,
            "type": type(self).__name__,
            "tool": self.tool,
            "circuit": self.circuit.to_dict(),
            "initial_mapping": self.initial_mapping.to_pairs(),
            "swap_count": self.swap_count,
            "runtime_seconds": self.runtime_seconds,
            "metadata": dict(self.metadata),
        }
        payload.update(self._extra_dict())
        return payload

    def _extra_dict(self) -> Dict[str, object]:
        """Subclass hook: extra payload fields."""
        return {}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QLSResult":
        """Reconstruct any registered result type from its payload."""
        version = payload.get("schema")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema version {version!r} "
                f"(this build reads version {RESULT_SCHEMA_VERSION})"
            )
        tag = payload.get("type", "QLSResult")
        target = _RESULT_TYPES.get(tag)
        if target is None:
            raise ValueError(
                f"unknown result type {tag!r} "
                f"(registered: {sorted(_RESULT_TYPES)})"
            )
        return target(**target._init_kwargs(payload))

    @classmethod
    def _init_kwargs(cls, payload: Dict[str, object]) -> Dict[str, object]:
        """Constructor kwargs from a payload (subclasses extend)."""
        return {
            "tool": payload["tool"],
            "circuit": QuantumCircuit.from_dict(payload["circuit"]),
            "initial_mapping": Mapping.from_pairs(payload["initial_mapping"]),
            "swap_count": payload["swap_count"],
            "runtime_seconds": payload["runtime_seconds"],
            "metadata": dict(payload["metadata"]),
        }


register_result_type(QLSResult)


class QLSTool(abc.ABC):
    """Base class for layout-synthesis tools."""

    #: Short identifier used in reports (override in subclasses).
    name: str = "qls"

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        """Map and route ``circuit`` onto ``coupling``.

        ``initial_mapping`` pins the starting placement (router-only mode,
        Section IV-C of the paper); tools that also search for placements
        must honour it when given.
        """

    def timed_run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
                  initial_mapping: Optional[Mapping] = None) -> QLSResult:
        """Run and stamp wall-clock runtime on the result.

        Tools that measure their own runtime — a pipeline summing stage
        timings, a pool run timing only the trial phase — leave a nonzero
        ``runtime_seconds``; the stamp applies only when the tool left the
        field at its 0.0 default, so a more precise self-measurement is
        never overwritten by the coarser wall-clock taken here.
        """
        start = time.perf_counter()
        result = self.run(circuit, coupling, initial_mapping)
        if result.runtime_seconds == 0.0:
            result.runtime_seconds = time.perf_counter() - start
        return result


class QLSError(RuntimeError):
    """Raised when a tool cannot produce a valid result."""
