"""Common interfaces for layout-synthesis tools.

Every tool consumes a logical circuit plus a coupling graph and produces a
:class:`QLSResult`: an initial mapping and a transpiled circuit whose gates
act on *physical* qubits, with explicit ``swap`` gates.  The contract is the
paper's: strip the SWAPs and un-map the gates and you recover a circuit
equivalent (up to dependency-preserving reordering) to the input.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..qubikos.mapping import Mapping


@dataclass
class QLSResult:
    """Output of one layout-synthesis run."""

    tool: str
    circuit: QuantumCircuit  # physical qubits, explicit swap gates
    initial_mapping: Mapping
    swap_count: int
    runtime_seconds: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"QLSResult(tool={self.tool!r}, swaps={self.swap_count}, "
                f"gates={len(self.circuit)}, t={self.runtime_seconds:.3f}s)")


class QLSTool(abc.ABC):
    """Base class for layout-synthesis tools."""

    #: Short identifier used in reports (override in subclasses).
    name: str = "qls"

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        """Map and route ``circuit`` onto ``coupling``.

        ``initial_mapping`` pins the starting placement (router-only mode,
        Section IV-C of the paper); tools that also search for placements
        must honour it when given.
        """

    def timed_run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
                  initial_mapping: Optional[Mapping] = None) -> QLSResult:
        """Run and stamp wall-clock runtime on the result.

        Tools that measure their own runtime — a pipeline summing stage
        timings, a pool run timing only the trial phase — leave a nonzero
        ``runtime_seconds``; the stamp applies only when the tool left the
        field at its 0.0 default, so a more precise self-measurement is
        never overwritten by the coarser wall-clock taken here.
        """
        start = time.perf_counter()
        result = self.run(circuit, coupling, initial_mapping)
        if result.runtime_seconds == 0.0:
            result.runtime_seconds = time.perf_counter() - start
        return result


class QLSError(RuntimeError):
    """Raised when a tool cannot produce a valid result."""
