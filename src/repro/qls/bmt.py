"""BMT-style mapper: bounded subgraph embedding + token swapping
(after Siraichi et al., "Qubit allocation as a combination of subgraph
isomorphism and token swapping", OOPSLA 2019 — the paper's reference [15]).

The circuit is cut greedily into maximal *embeddable prefixes*: keep adding
two-qubit gates (in dependency order) while the accumulated interaction
graph still embeds into the coupling graph (VF2).  Each segment gets a
concrete embedding; consecutive embeddings are stitched with a token-
swapping sequence.  QUEKO circuits collapse to a single segment (zero
SWAPs); QUBIKOS circuits force a new segment per section — by design no
embedding covers a whole section plus its special gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag
from ..circuit.gates import Gate
from ..graphs.token_swap import routing_via_token_swapping
from ..graphs.vf2 import SubgraphMatcher
from ..qubikos.mapping import Mapping
from .base import QLSError, QLSResult, QLSTool
from .reinsert import split_one_qubit_gates, weave_transpiled

Edge = Tuple[int, int]


@dataclass(frozen=True)
class BmtParameters:
    """Segmentation tunables."""

    max_segment_gates: int = 200  # cap per segment (VF2 cost control)
    embed_seed_bias: bool = True  # seed each embedding near the previous one


class BmtMapper(QLSTool):
    """Subgraph-embedding segments stitched by token swapping."""

    name = "bmt"

    def __init__(self, params: Optional[BmtParameters] = None,
                 seed: Optional[int] = None) -> None:
        self.params = params or BmtParameters()
        self.seed = seed

    def run(self, circuit: QuantumCircuit, coupling: CouplingGraph,
            initial_mapping: Optional[Mapping] = None) -> QLSResult:
        if circuit.num_qubits > coupling.num_qubits:
            raise QLSError("circuit larger than device")
        rng = random.Random(self.seed)
        two_qubit, bundles, tail = split_one_qubit_gates(circuit)
        skeleton = QuantumCircuit(circuit.num_qubits, two_qubit)
        dag = DependencyDag.from_circuit(skeleton)
        order = dag.topological_order()

        segments = self._segment(dag, order, coupling)
        mapping = self._initial_mapping(
            circuit.num_qubits, coupling, segments[0] if segments else [],
            dag, initial_mapping, rng,
        )
        start_mapping = mapping.copy()

        routed: List[Tuple[int, Gate]] = []
        mapping_at: Dict[int, Mapping] = {}
        swap_count = 0
        for index, segment in enumerate(segments):
            if index > 0 or initial_mapping is None:
                desired = self._embed_segment(
                    segment, dag, coupling, mapping, rng
                )
            else:
                desired = None  # honour the pinned mapping for segment 0
            if desired is not None:
                swaps = routing_via_token_swapping(
                    current={q: mapping.phys(q)
                             for q in range(skeleton.num_qubits)},
                    desired=desired,
                    neighbors=coupling.neighbors,
                    distance=coupling.distance,
                )
                for a, b in swaps:
                    mapping.swap_physical(a, b)
                    routed.append((-1, Gate("swap", (a, b))))
                    swap_count += 1
            swap_count += self._emit_segment(
                segment, dag, coupling, mapping, routed, mapping_at
            )

        transpiled = weave_transpiled(
            coupling.num_qubits, routed, bundles, tail,
            mapping_at=mapping_at, final_mapping=mapping,
            name=f"{circuit.name}_{self.name}",
        )
        return QLSResult(
            tool=self.name, circuit=transpiled,
            initial_mapping=start_mapping, swap_count=swap_count,
            metadata={"segments": len(segments)},
        )

    # -- pipeline stages ----------------------------------------------------

    def _segment(self, dag: DependencyDag, order: List[int],
                 coupling: CouplingGraph) -> List[List[int]]:
        """Greedy maximal embeddable prefixes over the topological order."""
        segments: List[List[int]] = []
        current: List[int] = []
        edges: Set[Edge] = set()
        for node in order:
            pair = dag.gates[node].qubit_pair()
            tentative = edges | {pair}
            if (current
                    and (len(current) >= self.params.max_segment_gates
                         or not self._embeddable(tentative, coupling))):
                segments.append(current)
                current = []
                edges = set()
                tentative = {pair}
            if not self._embeddable(tentative, coupling):
                # A single gate always embeds on a connected device with
                # at least one edge; guard anyway.
                raise QLSError("single gate does not embed; device too small")
            current.append(node)
            edges = tentative
        if current:
            segments.append(current)
        return segments

    @staticmethod
    def _embeddable(edges: Set[Edge], coupling: CouplingGraph) -> bool:
        matcher = SubgraphMatcher(
            {v for e in edges for v in e}, edges,
            range(coupling.num_qubits), coupling.edges,
        )
        return matcher.exists()

    def _embed_segment(self, segment: List[int], dag: DependencyDag,
                       coupling: CouplingGraph, mapping: Mapping,
                       rng: random.Random) -> Optional[Dict[int, int]]:
        """Concrete embedding for a segment; None keeps the current mapping."""
        edges = {dag.gates[n].qubit_pair() for n in segment}
        nodes = {v for e in edges for v in e}
        matcher = SubgraphMatcher(
            nodes, edges, range(coupling.num_qubits), coupling.edges,
        )
        embedding = matcher.find()
        if embedding is None:
            raise QLSError("segment lost its embedding; segmentation bug")
        # Keep untouched program qubits where they are when possible.
        desired: Dict[int, int] = {}
        used = set(embedding.values())
        for q, p in embedding.items():
            desired[q] = p
        for q in range(len(mapping)):
            if q in desired:
                continue
            p = mapping.phys(q)
            if p not in used:
                desired[q] = p
                used.add(p)
        free = [p for p in range(coupling.num_qubits) if p not in used]
        rng.shuffle(free)
        for q in sorted(set(range(len(mapping))) - set(desired)):
            desired[q] = free.pop()
        return desired

    def _initial_mapping(self, num_qubits: int, coupling: CouplingGraph,
                         first_segment: List[int], dag: DependencyDag,
                         pinned: Optional[Mapping],
                         rng: random.Random) -> Mapping:
        if pinned is not None:
            return pinned.copy()
        # Seed with a complete random mapping; the first segment embedding
        # immediately replaces the relevant part (token swaps are free at
        # time zero only conceptually, so embed *before* emitting instead).
        physical = list(range(coupling.num_qubits))
        rng.shuffle(physical)
        mapping = Mapping({q: physical[q] for q in range(num_qubits)})
        if first_segment:
            desired = self._embed_segment(
                first_segment, dag, coupling, mapping, rng
            )
            if desired is not None:
                mapping = Mapping({q: desired[q] for q in range(num_qubits)})
        return mapping

    @staticmethod
    def _emit_segment(segment: List[int], dag: DependencyDag,
                      coupling: CouplingGraph, mapping: Mapping,
                      routed: List[Tuple[int, Gate]],
                      mapping_at: Dict[int, Mapping]) -> int:
        """Emit segment gates; walk operands together if an edge is missing.

        With a correct embedding no extra SWAPs are needed; the walk is a
        safety net (counted in the SWAP total).
        """
        extra = 0
        for node in segment:
            g = dag.gates[node]
            while not coupling.has_edge(mapping.phys(g[0]), mapping.phys(g[1])):
                path = coupling.shortest_path(
                    mapping.phys(g[0]), mapping.phys(g[1])
                )
                mapping.swap_physical(path[0], path[1])
                routed.append((-1, Gate("swap", (path[0], path[1]))))
                extra += 1
            routed.append((node, g.remap({
                g[0]: mapping.phys(g[0]), g[1]: mapping.phys(g[1])
            })))
            mapping_at[node] = mapping.copy()
        return extra
