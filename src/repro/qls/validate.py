"""Transpiled-circuit validation.

Replays a transpiled circuit against the original circuit's dependency DAG:
every two-qubit gate must sit on a coupling edge, SWAP gates permute the
tracked mapping, and each non-SWAP gate must correspond to a front-layer
gate of the original circuit under the current mapping.  This is the
ground-truth acceptance test for every QLS tool *and* for QUBIKOS witness
circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag, ExecutionFrontier
from ..qubikos.mapping import Mapping


@dataclass
class ValidationReport:
    """Outcome of validating one transpiled circuit."""

    valid: bool
    swap_count: int
    executed_gates: int
    total_gates: int
    error: Optional[str] = None

    def __bool__(self) -> bool:
        return self.valid


def validate_transpiled(original: QuantumCircuit, transpiled: QuantumCircuit,
                        coupling: CouplingGraph,
                        initial_mapping: Mapping) -> ValidationReport:
    """Check that ``transpiled`` faithfully implements ``original``.

    ``transpiled`` has gates on physical qubits and explicit ``swap`` gates;
    ``initial_mapping`` gives the starting program->physical placement.
    """
    dag = DependencyDag.from_circuit(original)
    frontier = ExecutionFrontier(dag)
    mapping = initial_mapping.copy()
    swap_count = 0
    executed = 0

    def fail(message: str) -> ValidationReport:
        return ValidationReport(
            valid=False, swap_count=swap_count,
            executed_gates=executed, total_gates=len(dag), error=message,
        )

    for position, gate in enumerate(transpiled.gates):
        if not gate.is_two_qubit:
            continue
        p1, p2 = gate.qubits
        if not coupling.has_edge(p1, p2):
            return fail(
                f"gate {position} ({gate}) acts on non-adjacent physical "
                f"qubits ({p1}, {p2})"
            )
        if gate.is_swap:
            swap_count += 1
            mapping.swap_physical(p1, p2)
            continue
        if not (mapping.has_prog_at(p1) and mapping.has_prog_at(p2)):
            return fail(
                f"gate {position} ({gate}) touches a physical qubit with no "
                "program qubit mapped to it"
            )
        pair = tuple(sorted((mapping.prog(p1), mapping.prog(p2))))
        matched = None
        for node in frontier.front:
            if dag.gates[node].qubit_pair() == pair:
                matched = node
                break
        if matched is None:
            return fail(
                f"gate {position} ({gate}) = program pair {pair} is not in "
                f"the front layer {sorted(frontier.front)}"
            )
        frontier.execute(matched)
        executed += 1

    if not frontier.done():
        remaining = len(dag) - executed
        return fail(f"{remaining} original gate(s) never executed")
    return ValidationReport(
        valid=True, swap_count=swap_count,
        executed_gates=executed, total_gates=len(dag), error=None,
    )


def count_swaps(transpiled: QuantumCircuit) -> int:
    """SWAP gates in a transpiled circuit (the paper's cost metric)."""
    return transpiled.swap_count()


def strip_swaps_and_unmap(transpiled: QuantumCircuit, coupling: CouplingGraph,
                          initial_mapping: Mapping) -> QuantumCircuit:
    """Recover the logical gate sequence implemented by ``transpiled``.

    Useful for equivalence debugging: the result should be a dependency-
    preserving reordering of the original circuit.
    """
    mapping = initial_mapping.copy()
    logical = QuantumCircuit(transpiled.num_qubits, name=transpiled.name + "_logical")
    for gate in transpiled.gates:
        if gate.is_swap:
            mapping.swap_physical(*gate.qubits)
            continue
        if gate.is_two_qubit:
            p1, p2 = gate.qubits
            logical.append(gate.remap({p1: mapping.prog(p1), p2: mapping.prog(p2)}))
        else:
            (p,) = gate.qubits
            if mapping.has_prog_at(p):
                logical.append(gate.remap({p: mapping.prog(p)}))
    return logical
