"""Re-insertion of single-qubit gates after routing.

Routing operates on the two-qubit skeleton (single-qubit gates impose no
connectivity constraint).  To emit a complete transpiled circuit, each
single-qubit gate is replayed immediately before the next two-qubit gate on
its qubit (or at the end), mapped under the mapping current at that point —
which is always legal because the gate's dependency neighbourhood on its
qubit is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..circuit.circuit import QuantumCircuit
from ..circuit.gates import Gate
from ..qubikos.mapping import Mapping, MappingTimeline


def split_one_qubit_gates(circuit: QuantumCircuit
                          ) -> Tuple[List[Gate], Dict[int, List[Gate]], List[Gate]]:
    """Partition gates into (two-qubit list, pre-gate 1q bundles, tail).

    ``bundles[k]`` holds the single-qubit gates that must execute after
    two-qubit gate ``k-1`` and before two-qubit gate ``k`` *on the same
    qubit*; the tail holds gates after the last two-qubit gate on their
    qubit.
    """
    two_qubit: List[Gate] = []
    bundles: Dict[int, List[Gate]] = {}
    pending: Dict[int, List[Gate]] = {}
    for gate in circuit.gates:
        if gate.is_two_qubit:
            index = len(two_qubit)
            for q in gate.qubits:
                if pending.get(q):
                    bundles.setdefault(index, []).extend(pending.pop(q))
            two_qubit.append(gate)
        else:
            pending.setdefault(gate.qubits[0], []).append(gate)
    tail: List[Gate] = []
    for q in sorted(pending):
        tail.extend(pending[q])
    return two_qubit, bundles, tail


def weave_transpiled(num_qubits: int,
                     routed: Sequence[Tuple[int, Gate]],
                     bundles: Dict[int, List[Gate]],
                     tail: Sequence[Gate],
                     mapping_at: Union[MappingTimeline, Dict[int, Mapping]],
                     final_mapping: Mapping,
                     name: str = "transpiled") -> QuantumCircuit:
    """Assemble the full transpiled circuit.

    ``routed`` is the routing output: (original 2q index or -1 for SWAPs,
    physical gate).  ``mapping_at[k]`` is the mapping in force when original
    gate ``k`` executed — either an eager dict of snapshots or a
    :class:`~repro.qubikos.mapping.MappingTimeline` that replays swap deltas
    on demand; the loop below visits gates in routed (swap-prefix) order and
    consumes each lookup immediately, so the timeline's live ``view`` is
    safe and reconstruction is amortised O(1) per gate.
    """
    if isinstance(mapping_at, MappingTimeline):
        mapping_for = mapping_at.view
    else:
        mapping_for = mapping_at.__getitem__
    circuit = QuantumCircuit(num_qubits, name=name)
    for original_index, gate in routed:
        if original_index >= 0:
            for one_qubit in bundles.get(original_index, ()):
                q = one_qubit.qubits[0]
                circuit.append(one_qubit.remap({q: mapping_for(original_index).phys(q)}))
        circuit.append(gate)
    for one_qubit in tail:
        q = one_qubit.qubits[0]
        circuit.append(one_qubit.remap({q: final_mapping.phys(q)}))
    return circuit
