"""Cube-and-conquer: split one CNF into assumption cubes and fan them out.

A *cube* is a conjunction of literals.  Given a family of cubes that is
exhaustive (their disjunction is a tautology — e.g. the branches of an
``exactly_one`` group, or "edge e swapped first" for every edge plus "no
listed edge swapped first"), the formula is SAT iff the formula plus any
single cube is SAT, and UNSAT iff it is UNSAT under *every* cube.  Each
cube is an independent subproblem, which is exactly the shape the shared
:class:`repro.parallel.WorkerPool` wants (the idiom aig-cube applies to
CircuitSAT).

Determinism contract
--------------------
Workers solve cubes with fresh sessions (pure tasks — required by the
pool's self-healing re-run guarantee) and the merge is *first SAT in cube
order*: the parent collects results in submission-index order and stops at
the first SAT, so the winning model is the lowest-index SAT cube's model
no matter how the pool interleaved the work.  Remaining futures are
abandoned (early cancellation of the wait; a process pool cannot abort a
running call) — their results are discarded when they land.  UNSAT needs
every cube refuted; a cube that exhausts its budget degrades the merged
answer to UNKNOWN unless a later cube is SAT.

Pool casualties degrade per cube: a task lost to
:data:`repro.parallel.POOL_UNAVAILABLE_ERRORS` is re-solved serially in
the parent, so the merged outcome is identical with or without a healthy
pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import dimacs
from .backend import get_backend
from .types import Model, SolverResult

Cube = Tuple[int, ...]


@dataclass
class CubeOutcome:
    """Merged result of a cube fan-out."""

    result: SolverResult
    model: Optional[Model]
    #: Per-cube engine stats for every cube actually solved, in cube
    #: order, each tagged with ``{"cube": index, "result": value}``.
    cube_stats: List[Dict[str, int]] = field(default_factory=list)
    #: Index of the cube that decided SAT (None for UNSAT/UNKNOWN).
    decided_by: Optional[int] = None
    #: Cubes re-solved in the parent after a pool casualty.
    pool_fallbacks: int = 0


def solve_cube_task(text: str, assumptions: Sequence[int],
                    backend_name: str,
                    conflict_limit: Optional[int],
                    time_limit: Optional[float]
                    ) -> Tuple[str, Optional[List[int]], Dict[str, int]]:
    """Solve one cube in a worker process.

    Pure function of its arguments (the WorkerPool healing contract):
    parses the shared DIMACS text, opens a fresh backend session, and
    returns ``(result value, sorted true variables or None, stats)`` —
    plain picklable types only.
    """
    num_vars, clauses = dimacs.loads(text)
    session = get_backend(backend_name).session(num_vars, clauses)
    result = session.solve(assumptions, conflict_limit, time_limit)
    true_vars: Optional[List[int]] = None
    if result is SolverResult.SAT:
        model = session.model()
        true_vars = model.true_variables() if model is not None else []
    return result.value, true_vars, session.stats()


def _rebuild_model(num_vars: int, true_vars: Sequence[int]) -> Model:
    truths = set(true_vars)
    return Model({v: v in truths for v in range(1, num_vars + 1)})


def solve_cubes(num_vars: int, clauses: Sequence[Sequence[int]],
                cubes: Sequence[Cube],
                base_assumptions: Sequence[int] = (),
                backend: str = "python",
                pool=None,
                conflict_limit: Optional[int] = None,
                deadline: Optional[float] = None) -> CubeOutcome:
    """Fan ``cubes`` over ``pool`` and merge deterministically.

    ``cubes`` must be exhaustive for the merge to be sound; mutual
    exclusivity is not required (it only avoids duplicated work).
    ``base_assumptions`` are conjoined to every cube (the exact tool's
    transition-selector literals).  ``deadline`` is a
    ``time.monotonic()`` instant shared by every cube; with ``pool=None``
    cubes are solved serially in cube order, which produces the same
    merged outcome.
    """
    if not cubes:
        raise ValueError("cube set must be non-empty (and exhaustive)")
    text = dimacs.dumps(num_vars, [list(c) for c in clauses])
    base = tuple(base_assumptions)

    def remaining() -> Optional[float]:
        if deadline is None:
            return None
        return deadline - time.monotonic()

    futures = []
    if pool is not None:
        time_limit = remaining()
        if time_limit is not None and time_limit <= 0:
            return CubeOutcome(SolverResult.UNKNOWN, None)
        for cube in cubes:
            try:
                futures.append(pool.submit(
                    solve_cube_task, text, base + tuple(cube),
                    backend, conflict_limit, time_limit,
                ))
            except Exception:  # pool gone mid-fan-out: parent solves it
                futures.append(None)

    outcome = CubeOutcome(SolverResult.UNSAT, None)
    saw_unknown = False
    for index, cube in enumerate(cubes):
        value: Optional[str] = None
        if pool is not None and futures[index] is not None:
            try:
                value, true_vars, stats = futures[index].result()
            except Exception:
                value = None  # casualty: fall through to the parent
        if value is None:
            if pool is not None:
                outcome.pool_fallbacks += 1
            time_limit = remaining()
            if time_limit is not None and time_limit <= 0:
                saw_unknown = True
                break
            value, true_vars, stats = solve_cube_task(
                text, base + tuple(cube), backend, conflict_limit,
                time_limit,
            )
        stats = dict(stats)
        stats["cube"] = index
        stats["result"] = value
        outcome.cube_stats.append(stats)
        result = SolverResult(value)
        if result is SolverResult.SAT:
            outcome.result = SolverResult.SAT
            outcome.model = _rebuild_model(num_vars, true_vars or [])
            outcome.decided_by = index
            return outcome  # first SAT in cube order: deterministic
        if result is SolverResult.UNKNOWN:
            saw_unknown = True
    if saw_unknown:
        outcome.result = SolverResult.UNKNOWN
    return outcome
