"""Shared SAT types and literal conventions.

Variables are positive integers ``1..n``; a literal is ``+v`` (variable true)
or ``-v`` (variable false), DIMACS style.  Internally the solver packs a
literal as ``2*v`` (positive) / ``2*v + 1`` (negative) for array indexing.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Sequence


class SolverResult(Enum):
    """Outcome of a SAT solve call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # resource limit hit


class Model:
    """A satisfying assignment, queryable by DIMACS literal."""

    def __init__(self, values: Dict[int, bool]) -> None:
        self._values = dict(values)

    def __getitem__(self, variable: int) -> bool:
        return self._values[variable]

    def value(self, literal: int) -> bool:
        """Truth value of a (possibly negative) literal."""
        v = self._values[abs(literal)]
        return v if literal > 0 else not v

    def true_variables(self) -> List[int]:
        return sorted(v for v, val in self._values.items() if val)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, variable: int) -> bool:
        return variable in self._values


def lit_to_internal(literal: int) -> int:
    """DIMACS literal -> packed index."""
    v = abs(literal)
    return 2 * v if literal > 0 else 2 * v + 1


def internal_to_lit(index: int) -> int:
    """Packed index -> DIMACS literal."""
    v = index >> 1
    return v if (index & 1) == 0 else -v


def negate_internal(index: int) -> int:
    """Negation in packed form."""
    return index ^ 1


def check_clause(clause: Sequence[int]) -> List[int]:
    """Validate and normalize a DIMACS clause (dedupe, reject 0)."""
    seen = set()
    out: List[int] = []
    for literal in clause:
        literal = int(literal)
        if literal == 0:
            raise ValueError("literal 0 is reserved in DIMACS clauses")
        if literal in seen:
            continue
        seen.add(literal)
        out.append(literal)
    return out


def clause_is_tautology(clause: Sequence[int]) -> bool:
    """True when the clause contains both polarities of a variable."""
    lits = set(clause)
    return any(-l in lits for l in lits)
