"""Cardinality constraint encodings.

The exact QLS encoding bounds the number of SWAPs with an at-most-k
constraint over the swap indicator variables.  We use Sinz's sequential
counter (2005): auxiliary registers ``r[i][j]`` meaning "at least j+1 of the
first i+1 literals are true", giving O(n*k) clauses and arc consistency.
"""

from __future__ import annotations

from typing import List, Sequence

from .cnf import CnfBuilder


def at_most_k(builder: CnfBuilder, literals: Sequence[int], k: int,
              tag: str = "seqcnt") -> None:
    """Encode sum(literals) <= k with a sequential counter."""
    lits = list(literals)
    n = len(lits)
    if k < 0:
        builder.add([])  # unsatisfiable
        return
    if k == 0:
        for lit in lits:
            builder.add([-lit])
        return
    if n <= k:
        return  # vacuous
    if k == 1 and n <= 6:
        builder.at_most_one(lits)
        return
    # r[i][j]: among lits[0..i], at least j+1 are true (j in 0..k-1).
    reg: List[List[int]] = [
        [builder.fresh(f"{tag}_r_{i}_{j}") for j in range(k)] for i in range(n)
    ]
    # Base: r[0][0] <-> lits[0]; r[0][j>0] false.
    builder.add([-lits[0], reg[0][0]])
    for j in range(1, k):
        builder.add([-reg[0][j]])
    for i in range(1, n):
        # Carry: r[i][j] gets set if r[i-1][j] or (lits[i] and r[i-1][j-1]).
        builder.add([-lits[i], reg[i][0]])
        builder.add([-reg[i - 1][0], reg[i][0]])
        for j in range(1, k):
            builder.add([-reg[i - 1][j], reg[i][j]])
            builder.add([-lits[i], -reg[i - 1][j - 1], reg[i][j]])
        # Overflow: forbid lits[i] when the first i literals already hit k.
        builder.add([-lits[i], -reg[i - 1][k - 1]])
    # No constraint needed on reg truthward — at-most-k only needs one
    # direction (monotone encoding).


def at_least_k(builder: CnfBuilder, literals: Sequence[int], k: int,
               tag: str = "alk") -> None:
    """sum(literals) >= k, via at-most on the negations."""
    lits = list(literals)
    if k <= 0:
        return
    if k > len(lits):
        builder.add([])
        return
    at_most_k(builder, [-l for l in lits], len(lits) - k, tag=tag)


def exactly_k(builder: CnfBuilder, literals: Sequence[int], k: int,
              tag: str = "eqk") -> None:
    """sum(literals) == k."""
    at_most_k(builder, literals, k, tag=f"{tag}_ub")
    at_least_k(builder, literals, k, tag=f"{tag}_lb")
