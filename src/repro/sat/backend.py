"""Pluggable SAT solver backends behind one session protocol.

The exact QLS tool (and anything else that consumes CNF) talks to a
:class:`SatBackend`, never to a concrete solver, so the pure-Python
:class:`~repro.sat.solver.CdclSolver` and external engines are
interchangeable: same ``optimal_swaps``, same machine-checked UNSAT lower
bounds, regardless of which engine did the work (decoded circuits are
re-validated by the caller either way).

Three backend families, aig-cube style:

* ``python`` — the in-repo CDCL solver.  Always available, fully
  deterministic, incremental (one session keeps its learned clauses
  across ``solve(assumptions=...)`` calls).
* ``pysat`` — `python-sat` when installed (import-gated; never a hard
  dependency).  Incremental via native assumptions.
* subprocess DIMACS solvers — ``kissat`` / ``cadical`` / ``minisat``
  found on ``PATH``.  One process per call; assumptions become appended
  unit clauses, which is equivalent for the decide-under-assumptions use
  here (the caller never needs the final conflict clause).

``get_backend("auto")`` picks the fastest available engine
(kissat > cadical > minisat > pysat > python); ``available_backends()``
reports what this host offers.  Everything degrades to ``python`` —
there is no configuration in which the exact tool stops working.
"""

from __future__ import annotations

import abc
import importlib.util
import os
import shutil
import subprocess
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from . import dimacs
from .solver import CdclSolver
from .types import Model, SolverResult

#: ``auto`` preference order: external engines are orders of magnitude
#: faster than the pure-Python solver, so any of them wins when present.
AUTO_ORDER = ("kissat", "cadical", "minisat", "pysat", "python")

#: Subprocess solver executables probed on PATH (SAT-competition exit
#: codes: 10 = SAT, 20 = UNSAT).
_DIMACS_EXECUTABLES = ("kissat", "cadical", "minisat")


class SatSession(abc.ABC):
    """One loaded formula, solvable repeatedly under assumptions."""

    @abc.abstractmethod
    def solve(self, assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              time_limit: Optional[float] = None) -> SolverResult:
        """Decide satisfiability under per-call assumptions and budgets."""

    @abc.abstractmethod
    def model(self) -> Optional[Model]:
        """Satisfying assignment of the last ``solve``, or None."""

    @abc.abstractmethod
    def stats(self) -> Dict[str, int]:
        """Cumulative engine counters (keys are backend-specific)."""

    def add_clause(self, clause: Sequence[int]) -> None:
        """Grow the formula between solves (optional capability)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental clauses"
        )


class SatBackend(abc.ABC):
    """A SAT engine: names itself and opens sessions on formulas."""

    #: Registry / CLI identifier.
    name: str = "backend"
    #: Whether a session reuses learned state across ``solve`` calls.
    incremental: bool = False

    @abc.abstractmethod
    def available(self) -> bool:
        """Whether this engine can run on this host."""

    @abc.abstractmethod
    def session(self, num_vars: int,
                clauses: Sequence[Sequence[int]]) -> SatSession:
        """Load a formula and return a solvable session."""

    def solve_once(self, num_vars: int, clauses: Sequence[Sequence[int]],
                   assumptions: Sequence[int] = (),
                   conflict_limit: Optional[int] = None,
                   time_limit: Optional[float] = None
                   ) -> Tuple[SolverResult, Optional[Model], Dict[str, int]]:
        """One-shot convenience: (result, model-or-None, stats)."""
        session = self.session(num_vars, clauses)
        result = session.solve(assumptions, conflict_limit, time_limit)
        return result, session.model(), session.stats()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# -- pure-Python backend ------------------------------------------------------

class PythonSession(SatSession):
    """Session over the in-repo :class:`CdclSolver` (incremental)."""

    def __init__(self, num_vars: int,
                 clauses: Sequence[Sequence[int]]) -> None:
        self._solver = CdclSolver()
        self._solver._ensure_vars(num_vars)
        self._solver.add_clauses(clauses)
        self._last: Optional[SolverResult] = None

    def solve(self, assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              time_limit: Optional[float] = None) -> SolverResult:
        self._last = self._solver.solve(assumptions, conflict_limit,
                                        time_limit)
        return self._last

    def model(self) -> Optional[Model]:
        if self._last is not SolverResult.SAT:
            return None
        return self._solver.model()

    def stats(self) -> Dict[str, int]:
        return dict(self._solver.stats)

    def add_clause(self, clause: Sequence[int]) -> None:
        self._solver.add_clause(clause)


class PythonBackend(SatBackend):
    """The always-available in-repo CDCL engine."""

    name = "python"
    incremental = True

    def available(self) -> bool:
        return True

    def session(self, num_vars: int,
                clauses: Sequence[Sequence[int]]) -> PythonSession:
        return PythonSession(num_vars, clauses)


# -- pysat backend (import-gated) --------------------------------------------

class PysatSession(SatSession):
    """Session over a python-sat solver (native assumptions)."""

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]],
                 solver_name: str) -> None:
        import pysat.solvers  # gated: only reached when importable

        self._num_vars = num_vars
        self._solver = pysat.solvers.Solver(name=solver_name)
        for clause in clauses:
            self._solver.add_clause(list(clause))
        self._last: Optional[SolverResult] = None
        self._calls = 0

    def solve(self, assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              time_limit: Optional[float] = None) -> SolverResult:
        self._calls += 1
        if conflict_limit is not None:
            self._solver.conf_budget(conflict_limit)
            answer = self._solver.solve_limited(
                assumptions=list(assumptions))
        else:
            answer = self._solver.solve(assumptions=list(assumptions))
        if answer is None:
            self._last = SolverResult.UNKNOWN
        else:
            self._last = SolverResult.SAT if answer else SolverResult.UNSAT
        return self._last

    def model(self) -> Optional[Model]:
        if self._last is not SolverResult.SAT:
            return None
        raw = self._solver.get_model() or []
        values = {v: False for v in range(1, self._num_vars + 1)}
        for lit in raw:
            values[abs(lit)] = lit > 0
        return Model(values)

    def stats(self) -> Dict[str, int]:
        stats = {"calls": self._calls}
        accum = getattr(self._solver, "accum_stats", None)
        if callable(accum):
            try:
                stats.update({k: int(v) for k, v in accum().items()})
            except Exception:  # noqa: BLE001 - stats are best-effort
                pass
        return stats

    def add_clause(self, clause: Sequence[int]) -> None:
        self._solver.add_clause(list(clause))


class PysatBackend(SatBackend):
    """python-sat when installed (``pip install python-sat``)."""

    name = "pysat"
    incremental = True

    def __init__(self, solver_name: str = "cadical153") -> None:
        self.solver_name = solver_name

    def available(self) -> bool:
        return importlib.util.find_spec("pysat") is not None and \
            importlib.util.find_spec("pysat.solvers") is not None

    def session(self, num_vars: int,
                clauses: Sequence[Sequence[int]]) -> PysatSession:
        return PysatSession(num_vars, clauses, self.solver_name)


# -- subprocess DIMACS backend ------------------------------------------------

class DimacsProcessSession(SatSession):
    """Session shelling out to a DIMACS solver executable per call.

    Assumptions are appended as unit clauses — equivalent to assumption
    literals for deciding satisfiability (the only contract the exact
    tool needs).  ``conflict_limit`` is not forwarded (no portable flag);
    ``time_limit`` maps to a process timeout, with UNKNOWN on expiry.
    """

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]],
                 executable: str) -> None:
        self._num_vars = num_vars
        self._clauses = [list(c) for c in clauses]
        self._executable = executable
        self._model: Optional[Model] = None
        self._stats = {"calls": 0, "timeouts": 0}

    def solve(self, assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              time_limit: Optional[float] = None) -> SolverResult:
        del conflict_limit  # no portable CLI flag; budget by time instead
        self._stats["calls"] += 1
        self._model = None
        clauses = self._clauses + [[l] for l in assumptions]
        num_vars = self._num_vars
        for lit in assumptions:
            num_vars = max(num_vars, abs(lit))
        text = dimacs.dumps(num_vars, clauses)
        path = None
        try:
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".cnf", delete=False,
                    encoding="utf-8") as handle:
                handle.write(text)
                path = handle.name
            start = time.monotonic()
            try:
                proc = subprocess.run(
                    [self._executable, path], capture_output=True,
                    text=True, timeout=time_limit,
                )
            except subprocess.TimeoutExpired:
                self._stats["timeouts"] += 1
                return SolverResult.UNKNOWN
            self._stats["last_seconds"] = int(
                (time.monotonic() - start) * 1000)
            if proc.returncode == 10:
                self._model = self._parse_model(proc.stdout, num_vars)
                return SolverResult.SAT
            if proc.returncode == 20:
                return SolverResult.UNSAT
            return SolverResult.UNKNOWN
        finally:
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    @staticmethod
    def _parse_model(stdout: str, num_vars: int) -> Model:
        values = {v: False for v in range(1, num_vars + 1)}
        for line in stdout.splitlines():
            if not line.startswith("v"):
                continue
            for token in line[1:].split():
                lit = int(token)
                if lit != 0 and abs(lit) <= num_vars:
                    values[abs(lit)] = lit > 0
        return Model(values)

    def model(self) -> Optional[Model]:
        return self._model

    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    def add_clause(self, clause: Sequence[int]) -> None:
        self._clauses.append(list(clause))


class DimacsProcessBackend(SatBackend):
    """A DIMACS solver executable on PATH (kissat, cadical, minisat)."""

    incremental = False

    def __init__(self, name: str, executable: Optional[str] = None) -> None:
        self.name = name
        self.executable = executable or name

    def available(self) -> bool:
        return shutil.which(self.executable) is not None

    def session(self, num_vars: int,
                clauses: Sequence[Sequence[int]]) -> DimacsProcessSession:
        return DimacsProcessSession(num_vars, clauses, self.executable)


# -- registry -----------------------------------------------------------------

def _all_backends() -> Dict[str, SatBackend]:
    backends: Dict[str, SatBackend] = {"python": PythonBackend(),
                                       "pysat": PysatBackend()}
    for executable in _DIMACS_EXECUTABLES:
        backends[executable] = DimacsProcessBackend(executable)
    return backends


def available_backends() -> Dict[str, SatBackend]:
    """Name -> backend for every engine usable on this host."""
    return {name: backend for name, backend in _all_backends().items()
            if backend.available()}


def get_backend(name: str = "auto") -> SatBackend:
    """Resolve a backend by name; ``auto`` prefers external engines.

    Raises ``ValueError`` for an unknown name, and for a known engine
    that is not installed on this host (so a typo'd or missing
    ``--backend`` fails loudly instead of silently degrading).
    """
    if name == "auto":
        usable = available_backends()
        for candidate in AUTO_ORDER:
            if candidate in usable:
                return usable[candidate]
        return PythonBackend()  # unreachable: python is always available
    backends = _all_backends()
    backend = backends.get(name)
    if backend is None:
        raise ValueError(
            f"unknown SAT backend {name!r} "
            f"(known: auto, {', '.join(sorted(backends))})"
        )
    if not backend.available():
        raise ValueError(
            f"SAT backend {name!r} is not available on this host "
            f"(available: {', '.join(sorted(available_backends()))})"
        )
    return backend
