"""CNF formula builder with named variables.

Encoders (like the exact QLS solver) allocate variables by semantic key —
``("map", q, p, t)`` — and emit clauses through helper combinators.  The
builder keeps the key<->index bijection so models can be decoded.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .types import Model


class CnfBuilder:
    """Accumulates clauses over named boolean variables."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._names: List[Optional[Hashable]] = [None]  # 1-based
        self.clauses: List[List[int]] = []

    # -- variables ------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self._names) - 1

    def var(self, key: Hashable) -> int:
        """Variable index for ``key``, allocating on first use."""
        index = self._index.get(key)
        if index is None:
            index = len(self._names)
            self._index[key] = index
            self._names.append(key)
        return index

    def fresh(self, prefix: str = "aux") -> int:
        """Anonymous auxiliary variable."""
        return self.var((prefix, len(self._names)))

    def name_of(self, index: int) -> Hashable:
        """Key of variable ``index`` (auxiliaries return their tuple)."""
        return self._names[index]

    def has_var(self, key: Hashable) -> bool:
        return key in self._index

    # -- clause emission ------------------------------------------------------

    def add(self, clause: Sequence[int]) -> None:
        """Add a raw DIMACS clause."""
        self.clauses.append([int(l) for l in clause])

    def add_unit(self, literal: int) -> None:
        self.add([literal])

    def implies(self, antecedent: int, consequent: int) -> None:
        """a -> b."""
        self.add([-antecedent, consequent])

    def implies_all(self, antecedent: int, consequents: Iterable[int]) -> None:
        """a -> (b1 and b2 and ...)."""
        for c in consequents:
            self.add([-antecedent, c])

    def implies_or(self, antecedent: int, disjunction: Sequence[int]) -> None:
        """a -> (b1 or b2 or ...)."""
        self.add([-antecedent] + list(disjunction))

    def iff(self, a: int, b: int) -> None:
        """a <-> b."""
        self.add([-a, b])
        self.add([a, -b])

    def iff_and(self, target: int, conjuncts: Sequence[int]) -> None:
        """target <-> (c1 and c2 and ...)."""
        for c in conjuncts:
            self.add([-target, c])
        self.add([target] + [-c for c in conjuncts])

    def iff_or(self, target: int, disjuncts: Sequence[int]) -> None:
        """target <-> (d1 or d2 or ...)."""
        for d in disjuncts:
            self.add([target, -d])
        self.add([-target] + list(disjuncts))

    def at_most_one(self, literals: Sequence[int]) -> None:
        """Pairwise at-most-one (fine for the small groups used here)."""
        lits = list(literals)
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                self.add([-lits[i], -lits[j]])

    def at_least_one(self, literals: Sequence[int]) -> None:
        self.add(list(literals))

    def exactly_one(self, literals: Sequence[int]) -> None:
        self.at_least_one(literals)
        self.at_most_one(literals)

    # -- decoding ------------------------------------------------------------

    def true_keys(self, model: Model) -> List[Hashable]:
        """Keys of the named variables assigned true in ``model``."""
        result = []
        for key, index in self._index.items():
            if index in model and model[index]:
                result.append(key)
        return result

    def value(self, model: Model, key: Hashable) -> bool:
        """Truth value of the named variable ``key``."""
        return model[self._index[key]]

    def stats(self) -> Dict[str, int]:
        return {"vars": self.num_vars, "clauses": len(self.clauses)}

    def to_dimacs(self, comment: str = "") -> str:
        """Serialize the accumulated formula as DIMACS CNF text.

        The bridge to external solver backends and the cube-and-conquer
        fan-out: one serialization is shared by every cube task.
        """
        from . import dimacs
        return dimacs.dumps(self.num_vars, self.clauses, comment)
