"""DIMACS CNF reading and writing — interoperability and test fixtures."""

from __future__ import annotations

from typing import List, Tuple


def dumps(num_vars: int, clauses: List[List[int]], comment: str = "") -> str:
    """Serialize to DIMACS CNF text."""
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p cnf {num_vars} {len(clauses)}")
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def loads(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into (num_vars, clauses)."""
    num_vars = 0
    declared_clauses = None
    clauses: List[List[int]] = []
    pending: List[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad problem line: {raw!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(pending)
                pending = []
            else:
                pending.append(literal)
    if pending:
        clauses.append(pending)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerated (many generators get the count wrong) but normalized.
        pass
    for clause in clauses:
        for literal in clause:
            num_vars = max(num_vars, abs(literal))
    return num_vars, clauses


def dump(num_vars: int, clauses: List[List[int]], path, comment: str = "") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(num_vars, clauses, comment))


def load(path) -> Tuple[int, List[List[int]]]:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
