"""DIMACS command line for the SAT subsystem: ``python -m repro.sat``.

Two subcommands:

* ``solve FILE`` — decide a DIMACS CNF file with any registered backend
  (``--backend auto`` picks the fastest installed engine).  Output and
  exit codes follow the SAT-competition convention: an ``s`` status line
  (``SATISFIABLE`` / ``UNSATISFIABLE`` / ``UNKNOWN``), ``v`` model lines
  for SAT, and exit code 10 / 20 / 0 respectively — so the repo's own
  solver can stand in for kissat in scripts (including as the executable
  behind :class:`repro.sat.backend.DimacsProcessBackend`).
* ``dump FILE`` — parse and re-serialize a DIMACS file through
  :mod:`repro.sat.dimacs`, normalizing whitespace/comments; a cheap
  round-trip check for generated formulas.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import dimacs
from .backend import available_backends, get_backend
from .types import SolverResult

#: SAT-competition exit codes.
EXIT_SAT = 10
EXIT_UNSAT = 20
EXIT_UNKNOWN = 0


def _model_lines(true_vars: Sequence[int], num_vars: int,
                 width: int = 20) -> List[str]:
    """``v`` lines listing every variable with sign, 0-terminated."""
    truths = set(true_vars)
    literals = [v if v in truths else -v for v in range(1, num_vars + 1)]
    literals.append(0)
    lines = []
    for start in range(0, len(literals), width):
        chunk = literals[start:start + width]
        lines.append("v " + " ".join(str(l) for l in chunk))
    return lines


def cmd_solve(args: argparse.Namespace) -> int:
    try:
        num_vars, clauses = dimacs.load(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        backend = get_backend(args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    session = backend.session(num_vars, clauses)
    result = session.solve(args.assume or (),
                           conflict_limit=args.conflict_limit,
                           time_limit=args.time_limit)
    print(f"c backend {backend.name}")
    for key, value in sorted(session.stats().items()):
        print(f"c {key} {value}")
    if result is SolverResult.SAT:
        print("s SATISFIABLE")
        model = session.model()
        true_vars = model.true_variables() if model is not None else []
        for line in _model_lines(true_vars, num_vars):
            print(line)
        return EXIT_SAT
    if result is SolverResult.UNSAT:
        print("s UNSATISFIABLE")
        return EXIT_UNSAT
    print("s UNKNOWN")
    return EXIT_UNKNOWN


def cmd_dump(args: argparse.Namespace) -> int:
    try:
        num_vars, clauses = dimacs.load(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    text = dimacs.dumps(num_vars, clauses, comment=args.comment)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


def cmd_backends(_args: argparse.Namespace) -> int:
    for name, backend in sorted(available_backends().items()):
        kind = "incremental" if backend.incremental else "one-shot"
        print(f"{name:<10} {kind}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sat",
        description="Solve or normalize DIMACS CNF files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="decide a DIMACS CNF file")
    solve.add_argument("file", help="path to a DIMACS .cnf file")
    solve.add_argument("--backend", default="auto",
                       help="SAT backend name (default: auto)")
    solve.add_argument("--assume", type=int, action="append", metavar="LIT",
                       help="assumption literal (repeatable)")
    solve.add_argument("--conflict-limit", type=int, default=None)
    solve.add_argument("--time-limit", type=float, default=None)
    solve.set_defaults(func=cmd_solve)

    dump = sub.add_parser("dump", help="parse + re-serialize a DIMACS file")
    dump.add_argument("file", help="path to a DIMACS .cnf file")
    dump.add_argument("-o", "--output", default=None,
                      help="write here instead of stdout")
    dump.add_argument("--comment", default="",
                      help="comment line for the emitted header")
    dump.set_defaults(func=cmd_dump)

    backends = sub.add_parser("backends",
                              help="list SAT backends usable on this host")
    backends.set_defaults(func=cmd_backends)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
