"""A CDCL SAT solver in pure Python.

This is the exact-solver substrate standing in for Z3/PySAT (unavailable
offline).  It implements the standard modern architecture:

* two-watched-literal unit propagation with *blocker literals* — each watch
  entry carries a cached clause literal checked before the clause itself is
  touched, the classic MiniSat trick that skips most clause visits;
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping;
* exponential VSIDS activity (heap-backed decision queue with lazy
  staleness, not a linear scan) with phase saving;
* Luby-sequence restarts;
* learned-clause deletion by activity (simple geometric reduce schedule).

The propagation inner loop is deliberately flat: watch lists are packed
``[clause_index, blocker, clause_index, blocker, ...]`` integer arrays
edited in place with a read/write cursor pair, and the loop binds every
hot attribute to a local once.  In pure Python those choices are worth
roughly 2x on propagation-bound instances (tracked in ``BENCH_sat.json``
via ``benchmarks/bench_sat.py``).

The solver is *incremental*: clauses may be added between ``solve`` calls,
and ``solve(assumptions=...)`` decides satisfiability under temporary
assumption literals while keeping everything learned so far — the engine
behind the exact QLS tool's single-encoding ``k`` sweep.  ``conflict_limit``
and ``time_limit`` are per-call budgets.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .types import (
    Model,
    SolverResult,
    check_clause,
    clause_is_tautology,
    internal_to_lit,
    lit_to_internal,
    negate_internal,
)

_UNASSIGNED = -1


class CdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style clauses."""

    def __init__(self) -> None:
        self.num_vars = 0
        # Clause database: list of literal arrays (packed form).
        self._clauses: List[List[int]] = []
        self._learned_flags: List[bool] = []
        self._clause_activity: List[float] = []
        # Watches: packed literal -> flat [clause_index, blocker, ...] pairs.
        self._watches: List[List[int]] = [[], []]
        # Assignment trail.
        self._assign: List[int] = [_UNASSIGNED, _UNASSIGNED]
        self._level: List[int] = [0, 0]
        self._reason: List[int] = [-1, -1]
        self._trail: List[int] = []  # packed literals in assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0
        # VSIDS.
        self._activity: List[float] = [0.0, 0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase: List[bool] = [False, False]
        self._heap: List[Tuple[float, int]] = []  # (-activity, var), lazy
        # Clause activity.
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._empty_clause = False
        # Stats (cumulative across solve calls).
        self.stats = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
        }

    # -- problem construction ---------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        return self.num_vars

    def _ensure_vars(self, max_var: int) -> None:
        while self.num_vars < max_var:
            self.new_var()

    def add_clause(self, clause: Sequence[int]) -> None:
        """Add a DIMACS clause; empty clause marks the instance UNSAT."""
        clause = check_clause(clause)
        if clause_is_tautology(clause):
            return
        if not clause:
            self._empty_clause = True
            return
        self._ensure_vars(max(abs(l) for l in clause))
        packed = [lit_to_internal(l) for l in clause]
        if len(packed) == 1:
            # Queue as a root-level implication at solve time.
            self._clauses.append(packed)
            self._learned_flags.append(False)
            self._clause_activity.append(0.0)
            return
        index = len(self._clauses)
        self._clauses.append(packed)
        self._learned_flags.append(False)
        self._clause_activity.append(0.0)
        # Each watch carries the *other* watched literal as its blocker.
        self._watches[packed[0]].extend((index, packed[1]))
        self._watches[packed[1]].extend((index, packed[0]))

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # -- assignment helpers -----------------------------------------------

    def _var_value(self, var: int) -> int:
        return self._assign[var]

    def _lit_value(self, packed: int) -> int:
        """0=false, 1=true, -1=unassigned for a packed literal."""
        v = self._assign[packed >> 1]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v ^ (packed & 1)

    def _enqueue(self, packed: int, reason: int) -> None:
        var = packed >> 1
        self._assign[var] = 1 - (packed & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = (packed & 1) == 0
        self._trail.append(packed)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or -1."""
        trail = self._trail
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        clauses = self._clauses
        watches = self._watches
        props = 0
        qhead = self._qhead
        while qhead < len(trail):
            packed = trail[qhead]
            qhead += 1
            false_lit = packed ^ 1
            wl = watches[false_lit]
            i = 0
            j = 0
            n = len(wl)
            conflict = -1
            while i < n:
                ci = wl[i]
                blocker = wl[i + 1]
                i += 2
                bv = assign[blocker >> 1]
                if bv >= 0 and bv ^ (blocker & 1):
                    # Blocker satisfied: keep the watch, skip the clause.
                    wl[j] = ci
                    wl[j + 1] = blocker
                    j += 2
                    continue
                clause = clauses[ci]
                # Normalize: false literal at position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                fv = assign[first >> 1]
                if fv >= 0 and fv ^ (first & 1):
                    # Satisfied by the other watch; cache it as the blocker.
                    wl[j] = ci
                    wl[j + 1] = first
                    j += 2
                    continue
                # Look for a replacement watch (any non-false literal).
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    ov = assign[other >> 1]
                    if ov < 0 or ov ^ (other & 1):
                        clause[1] = other
                        clause[k] = false_lit
                        watches[other].extend((ci, first))
                        found = True
                        break
                if found:
                    continue
                wl[j] = ci
                wl[j + 1] = first
                j += 2
                if fv >= 0:
                    # first is false too: conflict.  Copy the rest back.
                    while i < n:
                        wl[j] = wl[i]
                        wl[j + 1] = wl[i + 1]
                        i += 2
                        j += 2
                    conflict = ci
                    break
                # Unit: enqueue first (inlined _enqueue).
                props += 1
                var = first >> 1
                assign[var] = 1 - (first & 1)
                level[var] = len(self._trail_lim)
                reason[var] = ci
                phase[var] = (first & 1) == 0
                trail.append(first)
            del wl[j:]
            if conflict >= 0:
                self._qhead = qhead
                self.stats["propagations"] += props
                return conflict
        self._qhead = qhead
        self.stats["propagations"] += props
        return -1

    # -- conflict analysis -----------------------------------------------

    def _bump_var(self, var: int) -> None:
        activity = self._activity[var] + self._var_inc
        self._activity[var] = activity
        if activity > 1e100:
            self._rescale_activity()
        elif self._assign[var] == _UNASSIGNED:
            heappush(self._heap, (-activity, var))

    def _rescale_activity(self) -> None:
        for v in range(1, self.num_vars + 1):
            self._activity[v] *= 1e-100
        self._var_inc *= 1e-100
        self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        assign = self._assign
        activity = self._activity
        self._heap = [
            (-activity[v], v) for v in range(1, self.num_vars + 1)
            if assign[v] == _UNASSIGNED
        ]
        heapify(self._heap)

    def _bump_clause(self, ci: int) -> None:
        self._clause_activity[ci] += self._cla_inc
        if self._clause_activity[ci] > 1e20:
            for j in range(len(self._clause_activity)):
                self._clause_activity[j] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """First-UIP learning: returns (learned packed clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        packed = -1
        index = len(self._trail) - 1
        reason = conflict
        cur_level = self._decision_level()
        while True:
            clause = self._clauses[reason]
            if self._learned_flags[reason]:
                self._bump_clause(reason)
            start = 0 if packed == -1 else 1
            for lit in clause[start:]:
                var = lit >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] >= cur_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Walk the trail back to the next marked literal.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            packed = self._trail[index]
            index -= 1
            var = packed >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learned[0] = negate_internal(packed)
        # Clause minimization: drop literals implied by the rest.
        learned = self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self._level[l >> 1] for l in learned[1:]), reverse=True)
        back = levels[0]
        # Put a literal of the backjump level in position 1 for watching.
        for k in range(1, len(learned)):
            if self._level[learned[k] >> 1] == back:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        """Cheap recursive minimization (self-subsumption by reasons)."""
        marked = set(l >> 1 for l in learned)
        result = [learned[0]]
        for lit in learned[1:]:
            var = lit >> 1
            reason = self._reason[var]
            if reason < 0:
                result.append(lit)
                continue
            clause = self._clauses[reason]
            if all((other >> 1) in marked or self._level[other >> 1] == 0
                   for other in clause if (other >> 1) != var):
                continue  # implied; drop
            result.append(lit)
        del seen
        return result

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        heap = self._heap
        activity = self._activity
        limit = self._trail_lim[level]
        for packed in reversed(self._trail[limit:]):
            var = packed >> 1
            self._assign[var] = _UNASSIGNED
            self._reason[var] = -1
            heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _record_learned(self, learned: List[int]) -> None:
        self.stats["learned"] += 1
        if len(learned) == 1:
            self._enqueue(learned[0], -1)
            return
        index = len(self._clauses)
        self._clauses.append(learned)
        self._learned_flags.append(True)
        self._clause_activity.append(self._cla_inc)
        self._watches[learned[0]].extend((index, learned[1]))
        self._watches[learned[1]].extend((index, learned[0]))
        self._enqueue(learned[0], index)

    # -- decisions ------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        """Highest-activity unassigned variable (lazy heap).

        Stale entries — the variable was assigned, or its activity moved
        since the entry was pushed (a fresher entry exists in that case) —
        are discarded on pop.  Ties break toward the lowest variable index,
        matching the linear scan this replaced.
        """
        heap = self._heap
        assign = self._assign
        activity = self._activity
        while heap:
            neg_act, var = heappop(heap)
            if assign[var] == _UNASSIGNED and -neg_act == activity[var]:
                return var
        return 0

    # -- learned clause management -----------------------------------------

    def _reduce_db(self) -> None:
        """Drop the less-active half of long learned clauses."""
        learned = [
            i for i, is_learned in enumerate(self._learned_flags)
            if is_learned and len(self._clauses[i]) > 2
        ]
        if len(learned) < 100:
            return
        locked = {self._reason[packed >> 1] for packed in self._trail}
        learned.sort(key=lambda i: self._clause_activity[i])
        to_delete = set(learned[: len(learned) // 2]) - locked
        if not to_delete:
            return
        self.stats["deleted"] += len(to_delete)
        keep_mask = [i not in to_delete for i in range(len(self._clauses))]
        remap: Dict[int, int] = {}
        new_clauses: List[List[int]] = []
        new_flags: List[bool] = []
        new_act: List[float] = []
        for i, keep in enumerate(keep_mask):
            if keep:
                remap[i] = len(new_clauses)
                new_clauses.append(self._clauses[i])
                new_flags.append(self._learned_flags[i])
                new_act.append(self._clause_activity[i])
        self._clauses = new_clauses
        self._learned_flags = new_flags
        self._clause_activity = new_act
        for lit in range(len(self._watches)):
            wl = self._watches[lit]
            kept: List[int] = []
            for p in range(0, len(wl), 2):
                ci = remap.get(wl[p])
                if ci is not None:
                    kept.extend((ci, wl[p + 1]))
            self._watches[lit] = kept
        for var in range(1, self.num_vars + 1):
            r = self._reason[var]
            self._reason[var] = remap.get(r, -1) if r >= 0 else -1

    # -- main loop ------------------------------------------------------------

    @staticmethod
    def _luby(i: int) -> int:
        """Luby restart sequence, 1-based: 1,1,2,1,1,2,4,1,1,2,..."""
        if i < 1:
            i = 1
        while True:
            k = i.bit_length()
            if (1 << k) - 1 == i:
                return 1 << (k - 1)
            i -= (1 << (k - 1)) - 1

    def solve(self, assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              time_limit: Optional[float] = None) -> SolverResult:
        """Decide satisfiability under optional assumptions and budgets.

        Both budgets are *per call*: ``conflict_limit`` counts conflicts in
        this call only (``self.stats`` stays cumulative), so an incremental
        caller gets a fresh budget each invocation.
        """
        if self._empty_clause:
            return SolverResult.UNSAT
        self._backtrack(0)
        # Re-propagate the whole root trail: clauses added since the last
        # call may already be unit or falsified under level-0 assignments.
        self._qhead = 0
        # Root-level units from unit input clauses.
        for ci, clause in enumerate(self._clauses):
            if len(clause) == 1 and not self._learned_flags[ci]:
                value = self._lit_value(clause[0])
                if value == 0:
                    return SolverResult.UNSAT
                if value == _UNASSIGNED:
                    self._enqueue(clause[0], -1)
        if self._propagate() >= 0:
            return SolverResult.UNSAT
        for l in assumptions:
            self._ensure_vars(abs(l))
        assumption_packed = [lit_to_internal(l) for l in assumptions]
        self._rebuild_heap()

        deadline = time.monotonic() + time_limit if time_limit else None
        conflicts_at_start = self.stats["conflicts"]
        restart_count = 1
        budget = 100 * self._luby(restart_count)
        conflicts_here = 0
        reduce_at = self.stats["learned"] + 2000

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    return SolverResult.UNSAT
                learned, back = self._analyze(conflict)
                self._backtrack(back)
                self._record_learned(learned)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if conflict_limit is not None and \
                        self.stats["conflicts"] - conflicts_at_start \
                        >= conflict_limit:
                    return SolverResult.UNKNOWN
                if self.stats["learned"] >= reduce_at:
                    self._reduce_db()
                    reduce_at += 1000
                continue
            if deadline is not None and time.monotonic() > deadline:
                return SolverResult.UNKNOWN
            if conflicts_here >= budget:
                self.stats["restarts"] += 1
                restart_count += 1
                budget = 100 * self._luby(restart_count)
                conflicts_here = 0
                self._backtrack(0)
                continue
            # Apply pending assumptions as pseudo-decisions.
            packed = self._next_assumption(assumption_packed)
            if packed == -2:
                return SolverResult.UNSAT
            if packed == -1:
                var = self._pick_branch_var()
                if var == 0:
                    return SolverResult.SAT
                self.stats["decisions"] += 1
                packed = 2 * var + (0 if self._phase[var] else 1)
            self._trail_lim.append(len(self._trail))
            self._enqueue(packed, -1)

    def _next_assumption(self, assumption_packed: List[int]) -> int:
        """Next unassigned assumption literal, -1 if none, -2 on conflict."""
        for packed in assumption_packed:
            value = self._lit_value(packed)
            if value == 0:
                return -2
            if value == _UNASSIGNED:
                return packed
        return -1

    def model(self) -> Model:
        """Extract the satisfying assignment after a SAT answer."""
        values = {}
        for var in range(1, self.num_vars + 1):
            values[var] = self._assign[var] == 1
        return Model(values)


def solve_clauses(clauses: Iterable[Sequence[int]],
                  assumptions: Sequence[int] = (),
                  conflict_limit: Optional[int] = None,
                  time_limit: Optional[float] = None
                  ) -> Tuple[SolverResult, Optional[Model]]:
    """One-shot convenience: solve a clause list, return (result, model)."""
    solver = CdclSolver()
    solver.add_clauses(clauses)
    result = solver.solve(assumptions, conflict_limit, time_limit)
    model = solver.model() if result is SolverResult.SAT else None
    return result, model
