"""Pure-Python CDCL SAT solver and CNF tooling (Z3/PySAT stand-in)."""

from .types import Model, SolverResult
from .solver import CdclSolver, solve_clauses
from .cnf import CnfBuilder
from .cardinality import at_least_k, at_most_k, exactly_k
from . import dimacs

__all__ = [
    "Model",
    "SolverResult",
    "CdclSolver",
    "solve_clauses",
    "CnfBuilder",
    "at_least_k",
    "at_most_k",
    "exactly_k",
    "dimacs",
]
