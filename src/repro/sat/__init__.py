"""Pure-Python CDCL SAT solver and CNF tooling (Z3/PySAT stand-in).

Beyond the always-available :class:`CdclSolver`, the package exposes a
pluggable backend protocol (:mod:`repro.sat.backend` — external
kissat/cadical/pysat engines when installed, auto-detected), a
cube-and-conquer fan-out over the shared worker pool
(:mod:`repro.sat.cube`), and a DIMACS CLI (``python -m repro.sat``) for
comparing engines on identical formulas.
"""

from .types import Model, SolverResult
from .solver import CdclSolver, solve_clauses
from .cnf import CnfBuilder
from .cardinality import at_least_k, at_most_k, exactly_k
from .backend import (
    AUTO_ORDER,
    DimacsProcessBackend,
    PysatBackend,
    PythonBackend,
    SatBackend,
    SatSession,
    available_backends,
    get_backend,
)
from .cube import Cube, CubeOutcome, solve_cube_task, solve_cubes
from . import dimacs

__all__ = [
    "Model",
    "SolverResult",
    "CdclSolver",
    "solve_clauses",
    "CnfBuilder",
    "at_least_k",
    "at_most_k",
    "exactly_k",
    "AUTO_ORDER",
    "SatBackend",
    "SatSession",
    "PythonBackend",
    "PysatBackend",
    "DimacsProcessBackend",
    "available_backends",
    "get_backend",
    "Cube",
    "CubeOutcome",
    "solve_cubes",
    "solve_cube_task",
    "dimacs",
]
