"""Typed request/response surface of the compilation service.

A :class:`CompileRequest` names everything that determines a compilation —
circuit, device (by :mod:`repro.arch.library` name), pipeline spec, seed,
optional pinned mapping — plus provenance-only fields (source instance
name, free-form options) that are deliberately *excluded* from the cache
key.  A :class:`CompileResponse` wraps the
:class:`~repro.pipeline.pipeline.PipelineResult` with provenance: the
normalized spec, the code/version fingerprint, cache status, and timings.

Both serialize to canonical JSON (``to_dict`` / ``from_dict``, versioned
schema), which is also the JSONL line format of the
``python -m repro.service`` batch CLI *and* the HTTP wire format of the
serving front-end (:mod:`repro.service.server` /
:mod:`repro.service.client`): one schema, every transport.

The envelope helpers at the bottom define the shared batch shapes —
``{"requests": [...]}`` in, ``{"responses": [...]}`` out — and the
canonical error payload every non-2xx server response carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..arch.library import available_architectures, get_architecture
from ..circuit.circuit import QuantumCircuit
from ..qls.base import QLSResult
from ..qubikos.instance import QubikosInstance
from ..qubikos.mapping import Mapping
from .fingerprint import (
    canonical_json,
    code_fingerprint,
    normalize_spec,
    request_fingerprint,
)

#: Version of the request/response wire schema (independent of the result
#: schema nested inside responses).
REQUEST_SCHEMA_VERSION = 1


class ServiceError(ValueError):
    """Raised for malformed service requests or payloads."""


@lru_cache(maxsize=None)
def _cached_coupling(name: str) -> CouplingGraph:
    """Per-process device cache (architectures are immutable).

    Every fingerprint and every compile resolves the request's device;
    without this, each call would rebuild the coupling graph — and its
    lazily-computed all-pairs distance matrix, the expensive part — from
    scratch.
    """
    return get_architecture(name)


@dataclass
class CompileRequest:
    """One unit of compilation work submitted to the service.

    ``instance`` and ``options`` are provenance only: they ride along into
    the response but do **not** enter the cache key — everything that
    affects the produced circuit must be expressed in ``spec``/``seed``.
    """

    circuit: QuantumCircuit
    device: str
    spec: str = "sabre"
    seed: Optional[int] = None
    #: Pinned starting placement (router-only mode); layout stages skip.
    initial_mapping: Optional[Mapping] = None
    #: Name of the QUBIKOS instance this circuit came from, if any.
    instance: Optional[str] = None
    #: Free-form annotations echoed into the response provenance.
    options: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_instance(cls, instance: QubikosInstance, spec: str = "sabre",
                      seed: Optional[int] = None, router_only: bool = False,
                      **options: object) -> "CompileRequest":
        """Build a request from a :class:`QubikosInstance` reference.

        ``router_only=True`` pins the instance's known-optimal initial
        mapping (the paper's Section IV-C mode).
        """
        return cls(
            circuit=instance.circuit,
            device=instance.architecture,
            spec=spec,
            seed=seed,
            initial_mapping=instance.mapping() if router_only else None,
            instance=instance.name,
            options=dict(options),
        )

    def coupling(self) -> CouplingGraph:
        """Resolve the device name against the architecture library."""
        try:
            return _cached_coupling(self.device)
        except (KeyError, ValueError) as exc:
            known = ", ".join(available_architectures())
            raise ServiceError(
                f"unknown device {self.device!r} (library: {known})"
            ) from exc

    def normalized_spec(self) -> str:
        return normalize_spec(self.spec)

    def fingerprint(self) -> str:
        """The content-addressed cache key of this request."""
        return request_fingerprint(self.circuit, self.coupling(), self.spec,
                                   self.seed, self.initial_mapping)

    # -- canonical serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REQUEST_SCHEMA_VERSION,
            "type": "CompileRequest",
            "circuit": self.circuit.to_dict(),
            "device": self.device,
            "spec": self.spec,
            "seed": self.seed,
            "initial_mapping": (
                [list(pair) for pair in self.initial_mapping.to_pairs()]
                if self.initial_mapping is not None else None
            ),
            "instance": self.instance,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CompileRequest":
        version = payload.get("schema")
        if version != REQUEST_SCHEMA_VERSION:
            raise ServiceError(
                f"unsupported request schema version {version!r} "
                f"(this build reads version {REQUEST_SCHEMA_VERSION})"
            )
        mapping = payload.get("initial_mapping")
        return cls(
            circuit=QuantumCircuit.from_dict(payload["circuit"]),
            device=payload["device"],
            spec=payload.get("spec", "sabre"),
            seed=payload.get("seed"),
            initial_mapping=(Mapping.from_pairs(mapping)
                             if mapping is not None else None),
            instance=payload.get("instance"),
            options=dict(payload.get("options", {})),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def __repr__(self) -> str:
        pin = ", pinned" if self.initial_mapping is not None else ""
        return (f"CompileRequest(device={self.device!r}, spec={self.spec!r}, "
                f"seed={self.seed}, gates={len(self.circuit)}{pin})")


@dataclass
class CompileResponse:
    """A compiled result plus full provenance.

    ``cache_hit`` distinguishes a recomputation from a cache return;
    ``compile_seconds`` is always the *compute* cost (on a hit, the cost
    recorded when the entry was first computed), while ``service_seconds``
    is this submission's end-to-end wall-clock including cache lookup —
    the number that collapses on warm runs.  In a parallel batch,
    responses that waited on a pool compile (misses and their duplicate
    followers) report their batch latency — queueing plus compute — and
    pre-resolved cache hits report only their serving cost.
    """

    request_fingerprint: str
    result: QLSResult
    provenance: Dict[str, object]
    cache_hit: bool
    compile_seconds: float
    service_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REQUEST_SCHEMA_VERSION,
            "type": "CompileResponse",
            "request_fingerprint": self.request_fingerprint,
            "result": self.result.to_dict(),
            "provenance": dict(self.provenance),
            "cache_hit": self.cache_hit,
            "compile_seconds": self.compile_seconds,
            "service_seconds": self.service_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CompileResponse":
        version = payload.get("schema")
        if version != REQUEST_SCHEMA_VERSION:
            raise ServiceError(
                f"unsupported response schema version {version!r} "
                f"(this build reads version {REQUEST_SCHEMA_VERSION})"
            )
        return cls(
            request_fingerprint=payload["request_fingerprint"],
            result=QLSResult.from_dict(payload["result"]),
            provenance=dict(payload["provenance"]),
            cache_hit=payload["cache_hit"],
            compile_seconds=payload["compile_seconds"],
            service_seconds=payload.get("service_seconds", 0.0),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def __repr__(self) -> str:
        status = "hit" if self.cache_hit else "miss"
        return (f"CompileResponse({self.request_fingerprint[:12]}, {status}, "
                f"swaps={self.result.swap_count}, "
                f"t={self.service_seconds:.3f}s)")


def make_provenance(request: CompileRequest, cache_hit: bool) -> Dict[str, object]:
    """The provenance block stamped on every response."""
    return {
        "device": request.device,
        "spec": request.spec,
        "normalized_spec": request.normalized_spec(),
        "seed": request.seed,
        "instance": request.instance,
        "options": dict(request.options),
        "code": code_fingerprint(),
        "cache": "hit" if cache_hit else "miss",
    }


# -- wire envelopes (HTTP server/client + batch CLI) --------------------------


def encode_requests(requests: Sequence[CompileRequest],
                    **extra: object) -> Dict[str, object]:
    """The batch-request envelope (``POST /v1/compile`` / ``/v1/jobs``).

    ``extra`` keys (``priority``, ``workers``) ride along at the top
    level next to ``requests``.
    """
    payload: Dict[str, object] = {
        "schema": REQUEST_SCHEMA_VERSION,
        "type": "CompileRequestBatch",
        "requests": [request.to_dict() for request in requests],
    }
    payload.update(extra)
    return payload


def decode_requests(payload: object) -> List[CompileRequest]:
    """Parse a ``POST /v1/compile``-shaped body into requests.

    Accepts either a single ``CompileRequest`` object or a batch
    envelope with a non-empty ``requests`` list; anything else raises
    :class:`ServiceError` (which the server maps to a 400).
    """
    if not isinstance(payload, dict):
        raise ServiceError(
            "request body must be a JSON object (a CompileRequest or a "
            "{'requests': [...]} batch)"
        )
    if payload.get("type") == "CompileRequest":
        return [CompileRequest.from_dict(payload)]
    requests = payload.get("requests")
    if not isinstance(requests, list) or not requests:
        raise ServiceError(
            "batch body needs a non-empty 'requests' list of "
            "CompileRequest objects"
        )
    return [CompileRequest.from_dict(item) for item in requests]


def encode_responses(responses: Iterable[CompileResponse]) -> Dict[str, object]:
    """The batch-response envelope mirroring :func:`encode_requests`."""
    return {
        "schema": REQUEST_SCHEMA_VERSION,
        "type": "CompileResponseBatch",
        "responses": [response.to_dict() for response in responses],
    }


def decode_responses(payload: object) -> List[CompileResponse]:
    """Parse a batch-response envelope (the client side of
    :func:`encode_responses`)."""
    if not isinstance(payload, dict) \
            or not isinstance(payload.get("responses"), list):
        raise ServiceError(
            "response body needs a 'responses' list of CompileResponse "
            "objects"
        )
    return [CompileResponse.from_dict(item) for item in payload["responses"]]


def error_payload(message: str, status: int) -> Dict[str, object]:
    """The canonical-JSON error body of every non-2xx server response."""
    return {
        "schema": REQUEST_SCHEMA_VERSION,
        "type": "ServiceError",
        "status": int(status),
        "error": str(message),
    }
