"""Stdlib HTTP front-end over the compilation service.

``python -m repro.service serve --port N`` (or :class:`ServiceServer`
embedded in-process) exposes the canonical-JSON wire schema of
:mod:`repro.service.api` over HTTP — no third-party dependencies, just
:mod:`http.server`:

===========================  ================================================
``POST /v1/compile``         synchronous compile: one ``CompileRequest``
                             object → one ``CompileResponse``; or a
                             ``{"requests": [...]}`` batch → a
                             ``{"responses": [...]}`` batch (in-batch
                             duplicate dedup and cache-first resolution
                             exactly as :meth:`CompilationService.submit_many`)
``POST /v1/jobs``            asynchronous batch: enqueue a job
                             (``{"requests": [...], "priority": P}``);
                             202 with the job payload (200 when cache-first
                             admission completed it inline)
``GET /v1/jobs``             every known job (no response payloads)
``GET /v1/jobs/<id>``        one job, responses included once it is done
``DELETE /v1/jobs/<id>``     cancel a queued job (running/terminal: no-op —
                             inspect ``status`` in the returned payload)
``GET /v1/cache``            ``ResultCache.info()`` (caps, tiers, stats)
``GET /v1/devices``          architecture-library names
``GET /v1/passes``           registered passes + preset specs
``GET /v1/healthz``          liveness + operator rollups: code fingerprint,
                             job counts, per-job/per-client aggregates,
                             worker-pool and journal fault counters
``GET /v1/metrics``          the armed metrics registry in Prometheus text
                             exposition format (see :mod:`repro.obs`)
===========================  ================================================

Every error response carries the canonical body of
:func:`repro.service.api.error_payload` — a JSON object with ``status``
and ``error`` — so remote callers get machine-readable failures, never
HTML.  Requests are handled on per-connection threads
(``ThreadingHTTPServer``); the service's :class:`ResultCache` is
thread-safe and compilation itself is pure, so concurrent sync compiles,
the job executor, and introspection endpoints coexist safely.

Robustness contract
-------------------
* **Load shedding** — a full job queue (``JobManager(max_queued=N)``)
  turns into ``503`` with a ``Retry-After`` header; well-behaved clients
  (:class:`~repro.service.client.ServiceClient` with a ``RetryPolicy``)
  back off and resubmit.
* **Deadlines** — a ``X-Deadline-Seconds`` request header bounds a
  ``POST /v1/compile``: when the budget expires the server answers
  ``504`` (with ``Retry-After``) *between* batch items, never mid-item —
  everything compiled before the cut is already cached, so the retry
  pays only for the remainder.
* **Draining shutdown** — :meth:`ServiceServer.shutdown` stops the
  accept loop, lets the running job finish (``drain=True``), and returns
  ``False`` (after a logged warning naming the stuck job) instead of
  silently leaking threads.
* **Fault injection** — each inbound request is an ``http.request``
  site: an armed :class:`repro.faults.FaultPlan` can drop the connection
  cold (``reset``) or stretch it (``delay``) to exercise client retries.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from .. import faults
from ..arch.library import available_architectures
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..pipeline.registry import list_passes, list_specs
from ..qls.base import QLSError
from .api import (
    REQUEST_SCHEMA_VERSION,
    ServiceError,
    decode_requests,
    encode_responses,
    error_payload,
)
from .fingerprint import canonical_json, code_fingerprint
from .jobs import JobManager, QueueFullError
from .service import CompilationService

#: Exceptions a request body can legitimately trigger; everything in here
#: becomes a 400 with a canonical error payload, not a traceback.
BAD_REQUEST_ERRORS = (ServiceError, QLSError, KeyError, TypeError,
                      IndexError, ValueError)

#: Request header bounding one ``POST /v1/compile`` wall-clock budget.
DEADLINE_HEADER = "X-Deadline-Seconds"

#: Optional request header identifying the caller for per-client rollups
#: (:class:`~repro.service.client.ServiceClient` sends it when built with
#: ``client_id=``).
CLIENT_HEADER = "X-Client-Id"

#: Routes that get their own ``endpoint`` metric label; everything else
#: collapses into ``other`` so arbitrary request paths cannot blow up the
#: label cardinality.
_KNOWN_ENDPOINTS = frozenset({
    "/v1/healthz", "/v1/devices", "/v1/passes", "/v1/cache",
    "/v1/compile", "/v1/jobs", "/v1/metrics",
})

logger = logging.getLogger(__name__)


def _endpoint_label(path: str) -> str:
    if path in _KNOWN_ENDPOINTS:
        return path
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{id}"
    return "other"


class _DeadlineExceeded(Exception):
    """Internal: a request's ``X-Deadline-Seconds`` budget expired."""


class ServiceServer:
    """The long-running serving front-end: HTTP + jobs over one service.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  ``serve_forever`` blocks (the CLI path); ``start`` runs
    the accept loop on a daemon thread (embedding and tests)::

        server = ServiceServer(service=CompilationService(...))
        server.start()
        client = ServiceClient(server.url)
        ...
        server.shutdown()
    """

    def __init__(self, service: Optional[CompilationService] = None,
                 jobs: Optional[JobManager] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 metrics: bool = True) -> None:
        self.service = service if service is not None else CompilationService()
        self.jobs = jobs if jobs is not None else JobManager(self.service)
        if metrics:
            # Idempotent: keeps an already-armed registry (and its
            # accumulated series) instead of clobbering it.
            obs_metrics.enable()
        self._clients_lock = threading.Lock()
        self._client_stats: Dict[str, Dict[str, int]] = {}  # guarded-by: _clients_lock
        handler = type("_BoundHandler", (_Handler,), {"app": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def note_client(self, client: str, endpoint: str) -> None:
        """Record one request from ``client`` (the ``X-Client-Id``
        header) against ``endpoint`` — kept server-side so per-client
        rollups work even with metrics disarmed."""
        with self._clients_lock:
            stats = self._client_stats.setdefault(client, {})
            stats[endpoint] = stats.get(endpoint, 0) + 1

    def client_stats(self) -> Dict[str, Dict[str, int]]:
        """``{client id: {endpoint: request count}}`` rollup."""
        with self._clients_lock:
            return {client: dict(stats)
                    for client, stats in self._client_stats.items()}

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (CLI mode)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ServiceServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is None:
            # Lifecycle field, not request state: start()/shutdown() are
            # called by the single owning thread, never by handlers.
            self._thread = threading.Thread(target=self.serve_forever,  # repro-lint: disable=lock-discipline
                                            name="service-http", daemon=True)
            self._thread.start()
        return self

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> bool:
        """Stop the accept loop and the job executor.

        ``drain=True`` (the default) waits for a job mid-compile to
        finish before returning — queued jobs never run, but with a
        journal attached they survive to the next start-up.  Returns
        ``True`` for a clean stop; ``False`` (after a logged warning)
        when the HTTP thread or the job executor had to be leaked.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        clean = True
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                clean = False
                logger.warning(
                    "ServiceServer.shutdown: HTTP thread still serving "
                    "after %.0fs; thread leaked", timeout,
                )
            self._thread = None
        return self.jobs.shutdown(wait=drain) and clean

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"ServiceServer({self.url}, jobs={self.jobs.counts()})"


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the bound :class:`ServiceServer` (``app``)."""

    app: ServiceServer = None  # bound by ServiceServer via subclassing
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep stdout/stderr quiet; callers watch the CLI banner

    def _send_json(self, payload: Dict[str, object], status: int = 200,
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._drain_body()
        body = canonical_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_text(self, text: str, status: int = 200,
                   content_type: str = "text/plain; version=0.0.4; "
                                       "charset=utf-8") -> None:
        """Plain-text response (the Prometheus exposition endpoint)."""
        self._drain_body()
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _drain_body(self) -> None:
        """Consume any unread request body before responding.

        Under HTTP/1.1 keep-alive an unread body stays in ``rfile`` and
        would be parsed as the *next* request on the connection — so a
        POST to an unknown route (or a DELETE sent with a body) must
        drain what it never read before the error response goes out.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        remaining = int(self.headers.get("Content-Length") or 0)
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)

    def _send_error_json(self, status: int, message: str,
                         headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(error_payload(message, status), status=status,
                        headers=headers)

    def _reset_connection(self) -> None:
        """Injected ``http.request`` reset: drop the connection with no
        response, the way a crashed/partitioned server looks from the
        client side.  Must not raise — socketserver would log it."""
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        self._body_consumed = True
        if not raw:
            raise ServiceError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") \
                from exc

    def _job_id(self, tail: str) -> int:
        try:
            return int(tail)
        except ValueError as exc:
            raise ServiceError(f"malformed job id {tail!r}") from exc

    # -- dispatch --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        self._body_consumed = False
        self._status: Optional[int] = None
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        endpoint = _endpoint_label(path)
        started = time.perf_counter()
        if faults._ACTIVE is not None:
            point = faults.poll(faults.HTTP_REQUEST)
            if point is not None:
                if point.kind == faults.RESET:
                    self._reset_connection()
                    return
                if point.kind == faults.DELAY:
                    time.sleep(point.seconds)
        try:
            with obs_trace.span("http.request", method=method,
                                endpoint=endpoint):
                handled = self._route(method, path)
        except QueueFullError as exc:
            # Load shedding (before BAD_REQUEST_ERRORS — QueueFullError
            # is a ServiceError, but a full queue is the server's state,
            # not the caller's mistake): 503 + the backoff hint.
            self._send_error_json(503, f"{exc}",
                                  headers={"Retry-After":
                                           f"{exc.retry_after:g}"})
        except _DeadlineExceeded as exc:
            # Work compiled before the cut is cached; the retry pays
            # only for the remainder.
            self._send_error_json(504, f"{exc}",
                                  headers={"Retry-After": "1"})
        except BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, f"{exc}")
        except Exception as exc:  # noqa: BLE001 - last-resort JSON 500
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            if not handled:
                self._send_error_json(
                    404, f"no route for {method} {path} (API root: /v1)"
                )
        self._account(method, endpoint, started)

    def _account(self, method: str, endpoint: str, started: float) -> None:
        """Per-request accounting: latency/status metrics plus the
        per-client rollup (``X-Client-Id``)."""
        client = self.headers.get(CLIENT_HEADER)
        if client:
            self.app.note_client(client, endpoint)
        if obs_metrics._ACTIVE is None:
            return
        status = str(self._status) if self._status is not None else "reset"
        obs_metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by method, endpoint, and response status.",
        ).inc(method=method, endpoint=endpoint, status=status)
        obs_metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency by method and endpoint.",
        ).observe(time.perf_counter() - started,
                  method=method, endpoint=endpoint)
        if client:
            obs_metrics.counter(
                "repro_http_requests_by_client_total",
                "HTTP requests by X-Client-Id.",
            ).inc(client=client)

    def _route(self, method: str, path: str) -> bool:
        app = self.app
        if (method, path) == ("GET", "/v1/healthz"):
            journal = app.jobs.journal
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Health",
                "status": "ok",
                "code": code_fingerprint(),
                "jobs": app.jobs.counts(),
                "cache": app.service.cache is not None,
                "jobs_rollup": app.jobs.rollup(),
                "pool": (app.service.pool.stats()
                         if app.service.pool is not None else None),
                "pool_fallbacks": app.service.pool_fallbacks,
                "journal": ({
                    "path": str(journal.path),
                    "write_errors": journal.write_errors,
                    "corrupt_lines": journal.corrupt_lines,
                } if journal is not None else None),
                "clients": app.client_stats(),
                "metrics": obs_metrics._ACTIVE is not None,
            })
        elif (method, path) == ("GET", "/v1/metrics"):
            registry = obs_metrics.active()
            self._send_text(registry.render_prometheus()
                            if registry is not None
                            else "# metrics disabled\n")
        elif (method, path) == ("GET", "/v1/devices"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Devices",
                "devices": available_architectures(),
            })
        elif (method, path) == ("GET", "/v1/passes"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Passes",
                "passes": [
                    {"name": info.name, "kind": info.kind,
                     "description": info.description,
                     "aliases": list(info.aliases)}
                    for info in list_passes()
                ],
                "specs": list_specs(),
            })
        elif (method, path) == ("GET", "/v1/cache"):
            cache = app.service.cache
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "CacheInfo",
                "cache": cache.info() if cache is not None else None,
            })
        elif (method, path) == ("POST", "/v1/compile"):
            self._compile(self._read_json())
        elif (method, path) == ("POST", "/v1/jobs"):
            self._submit_job(self._read_json())
        elif (method, path) == ("GET", "/v1/jobs"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Jobs",
                "jobs": [job.to_dict(include_responses=False)
                         for job in app.jobs.jobs()],
            })
        elif method in ("GET", "DELETE") and path.startswith("/v1/jobs/"):
            job_id = self._job_id(path[len("/v1/jobs/"):])
            try:
                job = (app.jobs.cancel(job_id) if method == "DELETE"
                       else app.jobs.get(job_id))
            except KeyError:
                self._send_error_json(404, f"no such job {job_id}")
            else:
                self._send_json(job.to_dict())
        else:
            return False
        return True

    # -- compile endpoints -----------------------------------------------------

    def _deadline_check(self):
        """A per-response progress hook enforcing ``X-Deadline-Seconds``
        between batch items (``None`` when the header is absent)."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            budget = float(raw)
        except ValueError as exc:
            raise ServiceError(
                f"malformed {DEADLINE_HEADER} header {raw!r}") from exc
        if budget <= 0:
            raise ServiceError(f"{DEADLINE_HEADER} must be positive")
        deadline = time.monotonic() + budget

        def check(_response) -> None:
            if time.monotonic() >= deadline:
                raise _DeadlineExceeded(
                    f"request deadline ({budget:g}s) exceeded; completed "
                    "items are cached — retry for the remainder"
                )
        return check

    def _compile(self, payload: object) -> None:
        """``POST /v1/compile``: sync single or batch compilation."""
        single = isinstance(payload, dict) \
            and payload.get("type") == "CompileRequest"
        requests = decode_requests(payload)
        workers = payload.get("workers") if isinstance(payload, dict) else None
        if workers is not None and not isinstance(workers, int):
            raise ServiceError("'workers' must be an integer")
        responses = self.app.service.submit_many(
            requests, workers=workers, progress=self._deadline_check())
        if single:
            self._send_json(responses[0].to_dict())
        else:
            self._send_json(encode_responses(responses))

    def _submit_job(self, payload: object) -> None:
        """``POST /v1/jobs``: enqueue an async batch."""
        requests = decode_requests(payload)
        priority = payload.get("priority", 0) if isinstance(payload, dict) \
            else 0
        if not isinstance(priority, int):
            raise ServiceError("'priority' must be an integer")
        job = self.app.jobs.submit(requests, priority=priority)
        # Cache-first admission completes 100%-hit jobs inline: report 200
        # for those, 202 for genuinely queued (or already running) work.
        self._send_json(job.to_dict(), status=200 if job.done() else 202)


def serve(service: Optional[CompilationService] = None,
          host: str = "127.0.0.1", port: int = 0) -> ServiceServer:
    """Build and start a background :class:`ServiceServer` (convenience
    for embedding; the CLI uses :meth:`ServiceServer.serve_forever`)."""
    return ServiceServer(service=service, host=host, port=port).start()


__all__ = ["ServiceServer", "serve", "BAD_REQUEST_ERRORS"]
