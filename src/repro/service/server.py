"""Stdlib HTTP front-end over the compilation service.

``python -m repro.service serve --port N`` (or :class:`ServiceServer`
embedded in-process) exposes the canonical-JSON wire schema of
:mod:`repro.service.api` over HTTP — no third-party dependencies, just
:mod:`http.server`:

===========================  ================================================
``POST /v1/compile``         synchronous compile: one ``CompileRequest``
                             object → one ``CompileResponse``; or a
                             ``{"requests": [...]}`` batch → a
                             ``{"responses": [...]}`` batch (in-batch
                             duplicate dedup and cache-first resolution
                             exactly as :meth:`CompilationService.submit_many`)
``POST /v1/jobs``            asynchronous batch: enqueue a job
                             (``{"requests": [...], "priority": P}``);
                             202 with the job payload (200 when cache-first
                             admission completed it inline)
``GET /v1/jobs``             every known job (no response payloads)
``GET /v1/jobs/<id>``        one job, responses included once it is done
``DELETE /v1/jobs/<id>``     cancel a queued job (running/terminal: no-op —
                             inspect ``status`` in the returned payload)
``GET /v1/cache``            ``ResultCache.info()`` (caps, tiers, stats)
``GET /v1/devices``          architecture-library names
``GET /v1/passes``           registered passes + preset specs
``GET /v1/healthz``          liveness: code fingerprint + job counts
===========================  ================================================

Every error response carries the canonical body of
:func:`repro.service.api.error_payload` — a JSON object with ``status``
and ``error`` — so remote callers get machine-readable failures, never
HTML.  Requests are handled on per-connection threads
(``ThreadingHTTPServer``); the service's :class:`ResultCache` is
thread-safe and compilation itself is pure, so concurrent sync compiles,
the job executor, and introspection endpoints coexist safely.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from ..arch.library import available_architectures
from ..pipeline.registry import list_passes, list_specs
from ..qls.base import QLSError
from .api import (
    REQUEST_SCHEMA_VERSION,
    ServiceError,
    decode_requests,
    encode_responses,
    error_payload,
)
from .fingerprint import canonical_json, code_fingerprint
from .jobs import JobManager
from .service import CompilationService

#: Exceptions a request body can legitimately trigger; everything in here
#: becomes a 400 with a canonical error payload, not a traceback.
BAD_REQUEST_ERRORS = (ServiceError, QLSError, KeyError, TypeError,
                      IndexError, ValueError)


class ServiceServer:
    """The long-running serving front-end: HTTP + jobs over one service.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  ``serve_forever`` blocks (the CLI path); ``start`` runs
    the accept loop on a daemon thread (embedding and tests)::

        server = ServiceServer(service=CompilationService(...))
        server.start()
        client = ServiceClient(server.url)
        ...
        server.shutdown()
    """

    def __init__(self, service: Optional[CompilationService] = None,
                 jobs: Optional[JobManager] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service if service is not None else CompilationService()
        self.jobs = jobs if jobs is not None else JobManager(self.service)
        handler = type("_BoundHandler", (_Handler,), {"app": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (CLI mode)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ServiceServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(target=self.serve_forever,
                                            name="service-http", daemon=True)
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the accept loop and the job executor."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.jobs.shutdown(wait=False)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"ServiceServer({self.url}, jobs={self.jobs.counts()})"


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the bound :class:`ServiceServer` (``app``)."""

    app: ServiceServer = None  # bound by ServiceServer via subclassing
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep stdout/stderr quiet; callers watch the CLI banner

    def _send_json(self, payload: Dict[str, object],
                   status: int = 200) -> None:
        self._drain_body()
        body = canonical_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> None:
        """Consume any unread request body before responding.

        Under HTTP/1.1 keep-alive an unread body stays in ``rfile`` and
        would be parsed as the *next* request on the connection — so a
        POST to an unknown route (or a DELETE sent with a body) must
        drain what it never read before the error response goes out.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        remaining = int(self.headers.get("Content-Length") or 0)
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(error_payload(message, status), status=status)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        self._body_consumed = True
        if not raw:
            raise ServiceError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") \
                from exc

    def _job_id(self, tail: str) -> int:
        try:
            return int(tail)
        except ValueError as exc:
            raise ServiceError(f"malformed job id {tail!r}") from exc

    # -- dispatch --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        self._body_consumed = False
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            handled = self._route(method, path)
        except BAD_REQUEST_ERRORS as exc:
            self._send_error_json(400, f"{exc}")
        except Exception as exc:  # noqa: BLE001 - last-resort JSON 500
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            if not handled:
                self._send_error_json(
                    404, f"no route for {method} {path} (API root: /v1)"
                )

    def _route(self, method: str, path: str) -> bool:
        app = self.app
        if (method, path) == ("GET", "/v1/healthz"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Health",
                "status": "ok",
                "code": code_fingerprint(),
                "jobs": app.jobs.counts(),
                "cache": app.service.cache is not None,
            })
        elif (method, path) == ("GET", "/v1/devices"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Devices",
                "devices": available_architectures(),
            })
        elif (method, path) == ("GET", "/v1/passes"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Passes",
                "passes": [
                    {"name": info.name, "kind": info.kind,
                     "description": info.description,
                     "aliases": list(info.aliases)}
                    for info in list_passes()
                ],
                "specs": list_specs(),
            })
        elif (method, path) == ("GET", "/v1/cache"):
            cache = app.service.cache
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "CacheInfo",
                "cache": cache.info() if cache is not None else None,
            })
        elif (method, path) == ("POST", "/v1/compile"):
            self._compile(self._read_json())
        elif (method, path) == ("POST", "/v1/jobs"):
            self._submit_job(self._read_json())
        elif (method, path) == ("GET", "/v1/jobs"):
            self._send_json({
                "schema": REQUEST_SCHEMA_VERSION,
                "type": "Jobs",
                "jobs": [job.to_dict(include_responses=False)
                         for job in app.jobs.jobs()],
            })
        elif method in ("GET", "DELETE") and path.startswith("/v1/jobs/"):
            job_id = self._job_id(path[len("/v1/jobs/"):])
            try:
                job = (app.jobs.cancel(job_id) if method == "DELETE"
                       else app.jobs.get(job_id))
            except KeyError:
                self._send_error_json(404, f"no such job {job_id}")
            else:
                self._send_json(job.to_dict())
        else:
            return False
        return True

    # -- compile endpoints -----------------------------------------------------

    def _compile(self, payload: object) -> None:
        """``POST /v1/compile``: sync single or batch compilation."""
        single = isinstance(payload, dict) \
            and payload.get("type") == "CompileRequest"
        requests = decode_requests(payload)
        workers = payload.get("workers") if isinstance(payload, dict) else None
        if workers is not None and not isinstance(workers, int):
            raise ServiceError("'workers' must be an integer")
        responses = self.app.service.submit_many(requests, workers=workers)
        if single:
            self._send_json(responses[0].to_dict())
        else:
            self._send_json(encode_responses(responses))

    def _submit_job(self, payload: object) -> None:
        """``POST /v1/jobs``: enqueue an async batch."""
        requests = decode_requests(payload)
        priority = payload.get("priority", 0) if isinstance(payload, dict) \
            else 0
        if not isinstance(priority, int):
            raise ServiceError("'priority' must be an integer")
        job = self.app.jobs.submit(requests, priority=priority)
        # Cache-first admission completes 100%-hit jobs inline: report 200
        # for those, 202 for genuinely queued (or already running) work.
        self._send_json(job.to_dict(), status=200 if job.done() else 202)


def serve(service: Optional[CompilationService] = None,
          host: str = "127.0.0.1", port: int = 0) -> ServiceServer:
    """Build and start a background :class:`ServiceServer` (convenience
    for embedding; the CLI uses :meth:`ServiceServer.serve_forever`)."""
    return ServiceServer(service=service, host=host, port=port).start()


__all__ = ["ServiceServer", "serve", "BAD_REQUEST_ERRORS"]
