"""The compilation service: cache-first submission over the pipeline layer.

``CompilationService.submit`` resolves one :class:`CompileRequest` —
cache lookup first, pipeline compilation on a miss — and returns a
:class:`CompileResponse` with provenance and timings.  ``submit_many``
fans a batch's cache *misses* over a :class:`~repro.parallel.WorkerPool`
with the same contract the evaluation harness established:

* **Deterministic, serial-identical ordering** — the returned list equals
  ``[service.submit(r) for r in requests]`` element-for-element (same
  results, same hit/miss flags): responses are assembled in request order
  regardless of worker scheduling, and duplicate fingerprints within one
  batch compile once — the first occurrence is the miss, later ones are
  hits, exactly as the serial loop's warm cache would produce.
* **Cache-first short-circuiting** — hits never touch the pool.
* **Streaming progress** — ``progress`` fires from the parent as each
  response completes (out of request order); only the list is reordered.
* **Failure isolation** — a miss whose worker dies (pool-level error) is
  transparently recompiled in the parent; compilation errors raised by
  the pipeline itself propagate unchanged, serial and parallel alike.

Results crossing the process boundary travel as canonical payload dicts
(the exact bytes the cache stores), so a batch-computed response is
bit-identical to a later cache hit of the same request.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, as_completed
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..parallel import POOL_UNAVAILABLE_ERRORS, WorkerPool
from ..pipeline.registry import build_pipeline
from ..qls.base import QLSResult
from .api import CompileRequest, CompileResponse, make_provenance
from .cache import ResultCache

#: Version of the cache-entry payload produced by compilation (and by the
#: ``evaluate()`` cache path, which stores the same shape via
#: :func:`make_entry`).  Checked by :func:`decode_entry` on every read.
COMPILE_ENTRY_VERSION = 1

ProgressFn = Callable[[CompileResponse], None]


def make_entry(result: QLSResult, compile_seconds: float) -> Dict[str, object]:
    """The one cache-entry payload shape, shared by every writer."""
    return {
        "entry_version": COMPILE_ENTRY_VERSION,
        "result": result.to_dict(),
        "compile_seconds": compile_seconds,
    }


def decode_entry(entry: Dict[str, object]) -> Tuple[QLSResult, float]:
    """Reconstruct ``(result, compile_seconds)`` from a cache entry.

    Raises ``ValueError``/``KeyError``/``TypeError`` on any stale or
    corrupt payload (wrong entry version, unknown result schema, missing
    fields); callers treat that as a cache miss and recompute — a
    poisoned entry must never crash a submission, and recomputing
    overwrites it.
    """
    if not isinstance(entry, dict) \
            or entry.get("entry_version") != COMPILE_ENTRY_VERSION:
        raise ValueError(
            f"unsupported cache entry version "
            f"{entry.get('entry_version') if isinstance(entry, dict) else entry!r} "
            f"(this build reads version {COMPILE_ENTRY_VERSION})"
        )
    return QLSResult.from_dict(entry["result"]), entry["compile_seconds"]


#: What a stale/corrupt entry raises out of :func:`decode_entry`.
ENTRY_DECODE_ERRORS = (KeyError, TypeError, ValueError)


def compile_entry(request: CompileRequest) -> Dict[str, object]:
    """Compile one request into its canonical cache-entry payload.

    This is the single compilation routine shared by the serial path, the
    pool workers, and the parent-side re-run of pool casualties, so every
    mode produces byte-identical entries.
    """
    pipeline = build_pipeline(request.spec, seed=request.seed)
    coupling = request.coupling()
    start = time.perf_counter()
    result = pipeline.run(request.circuit, coupling,
                          initial_mapping=request.initial_mapping)
    compile_seconds = time.perf_counter() - start
    return make_entry(result, compile_seconds)


class CompilationService:
    """Serving facade: typed requests in, cached typed responses out.

    ``cache=None`` creates a private in-memory LRU; pass a
    :class:`ResultCache` with a ``directory`` for a persistent store
    shared across processes, or ``cache=False`` to disable caching.
    ``workers``/``pool`` configure batch fan-out exactly as in
    :func:`repro.evalx.harness.evaluate`.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        if cache is False:
            self.cache: Optional[ResultCache] = None
        else:
            self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.pool = pool
        #: Batch misses recompiled in the parent after a pool-level
        #: failure (the serial-degrade path) — surfaced in ``/v1/healthz``.
        self.pool_fallbacks = 0

    # -- single submission -----------------------------------------------------

    def submit(self, request: CompileRequest) -> CompileResponse:
        """Resolve one request: cache hit, or compile and store."""
        started = time.perf_counter()
        key = request.fingerprint()
        with obs_trace.span("service.submit", spec=request.spec) as sp:
            decoded = self._lookup(key)
            if decoded is None:
                with obs_trace.span("service.compile", spec=request.spec):
                    entry = compile_entry(request)
                if self.cache is not None:
                    self.cache.put(key, entry)
                decoded = decode_entry(entry)
                hit = False
            else:
                hit = True
            sp.annotate(cache_hit=hit)
            result, compile_seconds = decoded
            self._count(hit, compile_seconds)
        return self._response(request, key, result, compile_seconds, hit,
                              started)

    @staticmethod
    def _count(hit: bool, compile_seconds: float) -> None:
        if obs_metrics._ACTIVE is None:
            return
        obs_metrics.counter(
            "repro_service_requests_total",
            "Compile requests resolved by the service.",
        ).inc(result="hit" if hit else "miss")
        if not hit:
            obs_metrics.histogram(
                "repro_service_compile_seconds",
                "Wall-clock seconds per cache-miss compilation.",
            ).observe(compile_seconds)

    def _lookup(self, key: str) -> Optional[Tuple[QLSResult, float]]:
        """Decoded cache entry for ``key``, or ``None`` (miss *or* a
        stale/corrupt entry, which recomputation then overwrites)."""
        if self.cache is None:
            return None
        entry = self.cache.get(key)
        if entry is None:
            return None
        try:
            return decode_entry(entry)
        except ENTRY_DECODE_ERRORS:
            self.cache.note_stale(key)
            return None

    def _response(self, request: CompileRequest, key: str, result: QLSResult,
                  compile_seconds: float, hit: bool,
                  started: float) -> CompileResponse:
        return CompileResponse(
            request_fingerprint=key,
            result=result,
            provenance=make_provenance(request, hit),
            cache_hit=hit,
            compile_seconds=compile_seconds,
            service_seconds=time.perf_counter() - started,
        )

    # -- batched submission ----------------------------------------------------

    def submit_many(self, requests: Iterable[CompileRequest],
                    progress: Optional[ProgressFn] = None,
                    workers: Optional[int] = None,
                    pool: Optional[WorkerPool] = None,
                    ) -> List[CompileResponse]:
        """Resolve a batch; misses fan out over a worker pool.

        See the module docstring for the ordering/caching/failure
        contract.  ``workers``/``pool`` override the service defaults for
        this batch; with neither, misses compile serially in-process.
        """
        requests = list(requests)
        pool = pool if pool is not None else self.pool
        workers = workers if workers is not None else self.workers
        with obs_trace.span("service.submit_many", requests=len(requests)):
            if pool is None and (workers is None or workers <= 1):
                return self._submit_serial(requests, progress)
            owned = pool is None
            if owned:
                pool = WorkerPool(workers)
            try:
                return self._submit_parallel(requests, progress, pool)
            finally:
                if owned:
                    pool.shutdown()

    def map(self, requests: Iterable[CompileRequest],
            progress: Optional[ProgressFn] = None,
            workers: Optional[int] = None,
            pool: Optional[WorkerPool] = None) -> Iterator[CompileResponse]:
        """Iterate responses in request order (a thin ``submit_many`` view)."""
        return iter(self.submit_many(requests, progress=progress,
                                     workers=workers, pool=pool))

    def _submit_serial(self, requests: List[CompileRequest],
                       progress: Optional[ProgressFn]
                       ) -> List[CompileResponse]:
        responses = []
        for request in requests:
            response = self.submit(request)
            responses.append(response)
            if progress is not None:
                progress(response)
        return responses

    def _submit_parallel(self, requests: List[CompileRequest],
                         progress: Optional[ProgressFn],
                         pool: WorkerPool) -> List[CompileResponse]:
        batch_started = time.perf_counter()
        keys = [request.fingerprint() for request in requests]
        slots: List[Optional[CompileResponse]] = [None] * len(requests)

        def finish(index: int, result: QLSResult, compile_seconds: float,
                   hit: bool, started: float) -> None:
            slots[index] = self._response(requests[index], keys[index],
                                          result, compile_seconds, hit,
                                          started)
            self._count(hit, compile_seconds)
            if progress is not None:
                progress(slots[index])

        # Cache-first pass; the first occurrence of each new fingerprint
        # becomes that key's single compilation, later duplicates resolve
        # as hits once it lands (matching the serial loop's warm cache).
        # With caching disabled the serial loop recomputes duplicates too,
        # so dedup keys become per-index and every request compiles.
        hits: List[Tuple[int, QLSResult, float]] = []
        compile_indices: Dict[str, int] = {}
        followers: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            if self.cache is None:
                compile_indices[f"{index}:{key}"] = index
                continue
            decoded = self._lookup(key)  # stale/corrupt entries = misses
            if decoded is not None:
                hits.append((index,) + decoded)
            elif key in compile_indices:
                followers.setdefault(key, []).append(index)
            else:
                compile_indices[key] = index

        # Queue every miss before touching the hits, so workers start on
        # the expensive compiles immediately; hit responses are then built
        # in the parent while the pool computes.
        futures: Dict[Future, str] = {}
        casualties: List[str] = []
        for key, index in compile_indices.items():
            try:
                future = pool.submit(compile_entry, requests[index])
            except Exception:  # noqa: BLE001 - pool transport failure
                casualties.append(key)
                continue
            futures[future] = key

        for index, result, compile_seconds in hits:
            finish(index, result, compile_seconds, hit=True,
                   started=time.perf_counter())

        def land(key: str, entry: Dict[str, object]) -> None:
            # Misses (and the duplicate followers waiting on them) report
            # their batch latency — queueing plus compute — as
            # service_seconds; pre-resolved hits above reported only their
            # serving cost.  Each response decodes its own result object,
            # matching the serial loop (no sharing between responses).
            if self.cache is not None:
                self.cache.put(key, entry)
            result, compile_seconds = decode_entry(entry)
            finish(compile_indices[key], result, compile_seconds, hit=False,
                   started=batch_started)
            for follower in followers.get(key, ()):  # duplicates are hits
                result, compile_seconds = decode_entry(entry)
                finish(follower, result, compile_seconds, hit=True,
                       started=batch_started)

        for future in as_completed(list(futures)):
            key = futures[future]
            try:
                entry = future.result()
            except Exception as exc:  # noqa: BLE001 - see below
                # Pipeline errors must propagate exactly as in the serial
                # path; only pool-level transport failures degrade to a
                # parent-side recompilation.
                if isinstance(exc, POOL_UNAVAILABLE_ERRORS):
                    casualties.append(key)
                    continue
                raise
            land(key, entry)

        if casualties:
            self.pool_fallbacks += len(casualties)
            if obs_metrics._ACTIVE is not None:
                obs_metrics.counter(
                    "repro_pool_fallbacks_total",
                    "Batch misses recompiled in the parent after a "
                    "pool-level failure.",
                ).inc(len(casualties))
        for key in casualties:
            land(key, compile_entry(requests[compile_indices[key]]))

        return [response for response in slots if response is not None]

    def __repr__(self) -> str:
        cache = repr(self.cache) if self.cache is not None else "disabled"
        return f"CompilationService(cache={cache}, workers={self.workers})"
