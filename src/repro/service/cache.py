"""Content-addressed result cache: in-memory LRU + optional on-disk store.

Entries are JSON-able dicts (a serialized result plus its original compute
cost) keyed by the request fingerprint.  The in-memory tier is a bounded
LRU; the optional disk tier (one ``<fingerprint>.json`` per entry under
``directory``) survives process restarts and is shared by every service
instance pointed at the same directory.  Reads promote disk entries into
memory; writes go to both tiers.  A corrupt or unreadable disk entry is
treated as a miss (and counted in ``stats``), never as an error — a cache
must degrade, not crash, the service.

Disk-tier eviction
------------------
Long-running servers need the disk tier bounded.  Three independent caps —
``max_entries``, ``max_bytes``, ``max_age_seconds`` — are enforced after
every disk write (and on demand via :meth:`evict`): entries older than the
age cap are expired first, then the oldest-by-mtime entries are evicted
until the count and byte caps hold.  Disk reads touch the entry's mtime,
so eviction order is LRU, not insertion order.  All caps are disk-tier
policy only; the memory tier keeps its own ``capacity`` LRU.

Thread safety: every public method takes an internal lock, so one cache
instance can back a threaded HTTP server (concurrent sync compiles, the
job executor, and introspection endpoints) without corrupting the LRU.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .. import faults
from ..obs import metrics as obs_metrics
from .fingerprint import canonical_json

#: Version of the on-disk entry envelope.
ENTRY_SCHEMA_VERSION = 1


def _note(event: str, amount: int = 1) -> None:
    """Mirror one :class:`CacheStats` increment into the armed metrics
    registry (``repro_cache_events_total{event=...}``); no-op disarmed."""
    if obs_metrics._ACTIVE is not None:
        obs_metrics.counter(
            "repro_cache_events_total",
            "Result-cache events (hit, miss, eviction, quarantine, ...).",
        ).inc(amount, event=event)


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    #: Hits served from the disk tier (subset of ``hits``).
    disk_hits: int = 0
    #: Disk writes that failed (entry kept in memory only).
    write_errors: int = 0
    #: Entries a caller reported as undecodable via ``note_stale``
    #: (reclassified from hit to miss).
    stale: int = 0
    #: Disk entries evicted by the ``max_entries``/``max_bytes`` caps.
    disk_evictions: int = 0
    #: Disk entries expired by the ``max_age_seconds`` cap.
    expired: int = 0
    #: Corrupt disk entries renamed to ``<fingerprint>.corrupt`` on their
    #: first decode failure (subset of ``corrupt``; see module docstring).
    corrupt_quarantined: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses, "puts": self.puts,
            "evictions": self.evictions, "corrupt": self.corrupt,
            "disk_hits": self.disk_hits, "write_errors": self.write_errors,
            "stale": self.stale, "disk_evictions": self.disk_evictions,
            "expired": self.expired,
            "corrupt_quarantined": self.corrupt_quarantined,
        }

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ResultCache:
    """LRU result cache with an optional persistent directory tier.

    ``max_entries``/``max_bytes``/``max_age_seconds`` bound the disk tier
    (``None`` = unbounded); see the module docstring for the eviction
    policy.
    """

    capacity: int = 1024
    directory: Optional[str] = None
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    max_age_seconds: Optional[float] = None
    stats: CacheStats = field(default_factory=CacheStats)  # guarded-by: _lock

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        for cap in ("max_entries", "max_bytes", "max_age_seconds"):
            value = getattr(self, cap)
            if value is not None and value <= 0:
                raise ValueError(f"{cap} must be positive (or None)")
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.RLock()
        # Incrementally tracked disk-tier footprint (None = unknown, next
        # cap enforcement rescans); spares the hot write path a full
        # directory scan when the caps demonstrably hold.  Because the
        # counters only see *this* process's writes, a periodic full sweep
        # (``_sweep_due``) re-grounds them — the mechanism that both
        # expires by age and keeps the caps honest when several processes
        # share one directory.
        self._disk_count: Optional[int] = None  # guarded-by: _lock
        self._disk_bytes: Optional[int] = None  # guarded-by: _lock
        self._sweep_due = 0.0  # guarded-by: _lock
        if self.directory is not None:
            self.directory = str(self.directory)
            Path(self.directory).mkdir(parents=True, exist_ok=True)

    # -- lookup ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached entry for ``key``, or ``None`` (recorded as a miss)."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                _note("hit")
                return entry
            entry = self._disk_read(key)
            if entry is not None:
                self._remember(key, entry)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                _note("hit")
                _note("disk_hit")
                return entry
            self.stats.misses += 1
            _note("miss")
            return None

    def peek(self, key: str) -> Optional[Dict[str, object]]:
        """The entry for ``key`` if present and readable, else ``None`` —
        a pure probe: no hit/miss/corrupt counting, no memory-LRU
        promotion, and no disk-LRU mtime refresh (an entry that is only
        ever probed must still age-expire).  For job admission and health
        checks that must stay invisible in the serving statistics."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                return entry
            return self._disk_read(key, touch=False, count=False)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            path = self._disk_path(key)
            return path is not None and path.exists()

    def __len__(self) -> int:
        """Distinct entries across both tiers."""
        with self._lock:
            keys = set(self._memory)
            if self.directory is not None:
                keys.update(path.stem
                            for path in Path(self.directory).glob("*.json"))
            return len(keys)

    def keys(self) -> List[str]:
        with self._lock:
            keys = set(self._memory)
            if self.directory is not None:
                keys.update(path.stem
                            for path in Path(self.directory).glob("*.json"))
            return sorted(keys)

    # -- storage ---------------------------------------------------------------

    def put(self, key: str, entry: Dict[str, object]) -> None:
        """Store ``entry`` under ``key`` in both tiers."""
        with self._lock:
            self.stats.puts += 1
            _note("put")
            self._remember(key, entry)
            self._disk_write(key, entry)
            self._enforce_disk_caps()

    def note_stale(self, key: str) -> None:
        """Report that the entry just served for ``key`` failed payload
        decoding (stale entry version, unknown result schema).

        Reclassifies the lookup from hit to miss — so hit rates reflect
        *served results*, not raw lookups — and drops the entry from the
        memory tier so it cannot be served again; the recomputation that
        follows overwrites both tiers.
        """
        with self._lock:
            self.stats.hits = max(0, self.stats.hits - 1)
            self.stats.misses += 1
            self.stats.stale += 1
            _note("stale")
            self._memory.pop(key, None)

    def clear(self) -> int:
        """Drop every entry from both tiers; returns the count removed."""
        with self._lock:
            removed = len(self)
            self._memory.clear()
            if self.directory is not None:
                for path in (list(Path(self.directory).glob("*.json"))
                             + list(Path(self.directory).glob("*.corrupt"))):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            self._disk_count = None  # footprint unknown if unlinks failed
            self._disk_bytes = None
            return removed

    def evict(self) -> int:
        """Apply the disk-tier caps now; returns the entries removed.

        Cap checks also run after every write (cheaply, against the
        tracked footprint) — this entry point exists for callers that
        changed the caps on an existing directory or want an age sweep
        without writing anything, so it always rescans.
        """
        with self._lock:
            return self._enforce_disk_caps(force=True)

    def _remember(self, key: str, entry: Dict[str, object]) -> None:  # requires-lock: _lock
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            _note("memory_eviction")

    # -- disk tier -------------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        if not key or any(ch in key for ch in "/\\."):
            # Fingerprints are hex; anything else must not touch the fs.
            return None
        return Path(self.directory) / f"{key}.json"

    def _disk_read(self, key: str, touch: bool = True,  # requires-lock: _lock
                   count: bool = True) -> Optional[Dict[str, object]]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        point = faults.poll(faults.CACHE_DISK_READ) \
            if faults._ACTIVE is not None else None
        if point is not None and point.kind == faults.DELAY:
            time.sleep(point.seconds)
        try:
            if point is not None and point.kind == faults.OS_ERROR:
                raise point.os_error()
            text = path.read_text(encoding="utf-8")
            if point is not None and point.kind == faults.CORRUPT:
                text = text[:max(1, len(text) // 2)] + "\x00#corrupt"
            envelope = json.loads(text)
            if envelope.get("schema") != ENTRY_SCHEMA_VERSION:
                raise ValueError("entry schema mismatch")
            entry = envelope["entry"]
        except OSError:
            # I/O failures (EIO, ENOSPC, permissions) may be transient:
            # miss, but leave the file alone — the data might be fine.
            if count:
                self.stats.corrupt += 1
                _note("corrupt")
            return None
        except (ValueError, KeyError, TypeError):
            # The bytes themselves are bad: quarantine on first decode
            # failure so every later lookup of this fingerprint is a
            # plain miss instead of a re-read + re-decode of junk (and
            # so the recompute that follows can store a clean entry).
            if count:
                self.stats.corrupt += 1
                _note("corrupt")
            self._quarantine(path)
            return None
        if touch:
            try:
                # A read is a use: refresh the mtime so LRU-by-mtime
                # eviction removes cold entries, not recently served ones.
                os.utime(path, None)
            except OSError:
                pass
        return entry

    def _quarantine(self, path: Path) -> None:  # requires-lock: _lock
        """Rename an undecodable ``<fingerprint>.json`` to
        ``<fingerprint>.corrupt`` (kept for post-mortems, invisible to
        every ``*.json`` scan, overwritten by the next recompute)."""
        target = path.with_suffix(".corrupt")
        try:
            size = path.stat().st_size
            os.replace(path, target)
        except OSError:
            return
        self.stats.corrupt_quarantined += 1
        _note("quarantined")
        if self._disk_count is not None:
            self._disk_count = max(0, self._disk_count - 1)
            self._disk_bytes = max(0, self._disk_bytes - size)

    def _disk_write(self, key: str, entry: Dict[str, object]) -> None:  # requires-lock: _lock
        path = self._disk_path(key)
        if path is None:
            return
        point = faults.poll(faults.CACHE_DISK_WRITE) \
            if faults._ACTIVE is not None else None
        if point is not None and point.kind == faults.DELAY:
            time.sleep(point.seconds)
        envelope = {"schema": ENTRY_SCHEMA_VERSION, "key": key, "entry": entry}
        data = canonical_json(envelope)
        try:
            previous = path.stat().st_size
        except OSError:
            previous = None
        tmp = path.with_name(path.name + ".tmp")
        try:
            if point is not None and point.kind == faults.OS_ERROR:
                raise point.os_error()
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # Same degrade-don't-crash contract as the read path: a full or
            # read-only disk must not lose the compile that just finished —
            # the entry stays served from the memory tier.
            self.stats.write_errors += 1
            _note("write_error")
            return
        if self._disk_count is not None:
            size = len(data.encode("utf-8"))
            if previous is None:
                self._disk_count += 1
                self._disk_bytes += size
            else:
                self._disk_bytes += size - previous

    #: Upper bound on how long a capped cache goes between full directory
    #: sweeps (shorter when ``max_age_seconds`` demands it).
    SWEEP_INTERVAL_SECONDS = 60.0

    def _caps_maybe_exceeded(self, now: float) -> bool:  # requires-lock: _lock
        """Cheap pre-check against the tracked footprint: only a possible
        violation (or an unknown footprint, or a due periodic sweep)
        warrants the full directory scan."""
        if self._disk_count is None or now >= self._sweep_due:
            return True
        if self.max_entries is not None \
                and self._disk_count > self.max_entries:
            return True
        return self.max_bytes is not None and self._disk_bytes > self.max_bytes

    def _enforce_disk_caps(self, force: bool = False) -> int:  # requires-lock: _lock
        """LRU-by-mtime disk eviction; returns the entries removed."""
        if self.directory is None or (
                self.max_entries is None and self.max_bytes is None
                and self.max_age_seconds is None):
            return 0
        now = time.time()
        if not force and not self._caps_maybe_exceeded(now):
            return 0
        files = []
        for path in Path(self.directory).glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((stat.st_mtime, stat.st_size, path))
        files.sort()  # oldest first
        removed = 0
        survivors = []
        for mtime, size, path in files:
            if self.max_age_seconds is not None \
                    and now - mtime > self.max_age_seconds:
                if self._unlink(path):
                    removed += 1
                    self.stats.expired += 1
                    _note("expired")
                continue
            survivors.append((size, path))
        count = len(survivors)
        total = sum(size for size, _ in survivors)
        for size, path in survivors:  # oldest first: LRU order
            over_count = self.max_entries is not None \
                and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_count or over_bytes):
                break
            if self._unlink(path):
                removed += 1
                count -= 1
                total -= size
                self.stats.disk_evictions += 1
                _note("disk_eviction")
        self._disk_count = count
        self._disk_bytes = total
        # Amortise the next sweep: ten checks per age period (bounding
        # expiry staleness), never longer than the base interval (bounding
        # cap overshoot from other processes writing the same directory).
        interval = self.SWEEP_INTERVAL_SECONDS
        if self.max_age_seconds is not None:
            interval = min(interval, max(1.0, self.max_age_seconds / 10))
        self._sweep_due = now + interval
        return removed

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # -- introspection ---------------------------------------------------------

    def info(self) -> Dict[str, object]:
        """Inspection payload for ``cache-info`` and ``GET /v1/cache``."""
        # The directory walk touches no shared mutable state, so it runs
        # unlocked: a monitoring poll of a big cache must not stall every
        # concurrent compile-path get/put for the duration of the scan.
        disk_entries = 0
        disk_bytes = 0
        if self.directory is not None:
            for path in Path(self.directory).glob("*.json"):
                disk_entries += 1
                try:
                    disk_bytes += path.stat().st_size
                except OSError:
                    pass
        with self._lock:
            return {
                "capacity": self.capacity,
                "memory_entries": len(self._memory),
                "directory": self.directory,
                "disk_entries": disk_entries,
                "disk_bytes": disk_bytes,
                "eviction": {
                    "max_entries": self.max_entries,
                    "max_bytes": self.max_bytes,
                    "max_age_seconds": self.max_age_seconds,
                },
                "corrupt_quarantined": self.stats.corrupt_quarantined,
                "stats": self.stats.to_dict(),
            }

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:
        tier = f", dir={self.directory!r}" if self.directory else ""
        return (f"ResultCache({len(self._memory)}/{self.capacity} in memory"
                f"{tier}, hits={self.stats.hits}, misses={self.stats.misses})")
