"""Content-addressed result cache: in-memory LRU + optional on-disk store.

Entries are JSON-able dicts (a serialized result plus its original compute
cost) keyed by the request fingerprint.  The in-memory tier is a bounded
LRU; the optional disk tier (one ``<fingerprint>.json`` per entry under
``directory``) survives process restarts and is shared by every service
instance pointed at the same directory.  Reads promote disk entries into
memory; writes go to both tiers.  A corrupt or unreadable disk entry is
treated as a miss (and counted in ``stats``), never as an error — a cache
must degrade, not crash, the service.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from .fingerprint import canonical_json

#: Version of the on-disk entry envelope.
ENTRY_SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    #: Hits served from the disk tier (subset of ``hits``).
    disk_hits: int = 0
    #: Disk writes that failed (entry kept in memory only).
    write_errors: int = 0
    #: Entries a caller reported as undecodable via ``note_stale``
    #: (reclassified from hit to miss).
    stale: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses, "puts": self.puts,
            "evictions": self.evictions, "corrupt": self.corrupt,
            "disk_hits": self.disk_hits, "write_errors": self.write_errors,
            "stale": self.stale,
        }

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ResultCache:
    """LRU result cache with an optional persistent directory tier."""

    capacity: int = 1024
    directory: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        if self.directory is not None:
            self.directory = str(self.directory)
            Path(self.directory).mkdir(parents=True, exist_ok=True)

    # -- lookup ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached entry for ``key``, or ``None`` (recorded as a miss)."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return entry
        entry = self._disk_read(key)
        if entry is not None:
            self._remember(key, entry)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return entry
        self.stats.misses += 1
        return None

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def __len__(self) -> int:
        """Distinct entries across both tiers."""
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(path.stem for path in Path(self.directory).glob("*.json"))
        return len(keys)

    def keys(self) -> List[str]:
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(path.stem for path in Path(self.directory).glob("*.json"))
        return sorted(keys)

    # -- storage ---------------------------------------------------------------

    def put(self, key: str, entry: Dict[str, object]) -> None:
        """Store ``entry`` under ``key`` in both tiers."""
        self.stats.puts += 1
        self._remember(key, entry)
        self._disk_write(key, entry)

    def note_stale(self, key: str) -> None:
        """Report that the entry just served for ``key`` failed payload
        decoding (stale entry version, unknown result schema).

        Reclassifies the lookup from hit to miss — so hit rates reflect
        *served results*, not raw lookups — and drops the entry from the
        memory tier so it cannot be served again; the recomputation that
        follows overwrites both tiers.
        """
        self.stats.hits = max(0, self.stats.hits - 1)
        self.stats.misses += 1
        self.stats.stale += 1
        self._memory.pop(key, None)

    def clear(self) -> int:
        """Drop every entry from both tiers; returns the count removed."""
        removed = len(self)
        self._memory.clear()
        if self.directory is not None:
            for path in Path(self.directory).glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def _remember(self, key: str, entry: Dict[str, object]) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier -------------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        if not key or any(ch in key for ch in "/\\."):
            # Fingerprints are hex; anything else must not touch the fs.
            return None
        return Path(self.directory) / f"{key}.json"

    def _disk_read(self, key: str) -> Optional[Dict[str, object]]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if envelope.get("schema") != ENTRY_SCHEMA_VERSION:
                raise ValueError("entry schema mismatch")
            return envelope["entry"]
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            return None

    def _disk_write(self, key: str, entry: Dict[str, object]) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        envelope = {"schema": ENTRY_SCHEMA_VERSION, "key": key, "entry": entry}
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(canonical_json(envelope), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # Same degrade-don't-crash contract as the read path: a full or
            # read-only disk must not lose the compile that just finished —
            # the entry stays served from the memory tier.
            self.stats.write_errors += 1

    # -- introspection ---------------------------------------------------------

    def info(self) -> Dict[str, object]:
        """Inspection payload for the ``cache-info`` CLI."""
        disk_entries = 0
        disk_bytes = 0
        if self.directory is not None:
            for path in Path(self.directory).glob("*.json"):
                disk_entries += 1
                try:
                    disk_bytes += path.stat().st_size
                except OSError:
                    pass
        return {
            "capacity": self.capacity,
            "memory_entries": len(self._memory),
            "directory": self.directory,
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "stats": self.stats.to_dict(),
        }

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __repr__(self) -> str:
        tier = f", dir={self.directory!r}" if self.directory else ""
        return (f"ResultCache({len(self._memory)}/{self.capacity} in memory"
                f"{tier}, hits={self.stats.hits}, misses={self.stats.misses})")
