"""``python -m repro.service`` — serving, batch compilation, cache management.

Usage::

    # Long-running HTTP front-end (see repro.service.server for routes):
    python -m repro.service serve --port 8000 --cache-dir .qls-cache \
        --workers 4 --max-entries 10000 --max-bytes 500000000 \
        --journal jobs.jsonl --max-queued 64 \
        --trace trace.jsonl --profile

    # Compile a JSONL stream of CompileRequest payloads (one per line):
    python -m repro.service batch requests.jsonl --out responses.jsonl \
        --cache-dir .qls-cache --workers 4

    # Inspect / clear a persistent cache directory:
    python -m repro.service cache-info  --cache-dir .qls-cache
    python -m repro.service cache-clear --cache-dir .qls-cache

    # Generate a demo request stream (QUBIKOS instances -> requests):
    python -m repro.service make-requests --device aspen4 --count 4 \
        --spec sabre --seed 3 --out requests.jsonl

``batch`` reads one :class:`~repro.service.api.CompileRequest` JSON object
per line, resolves the batch through a
:class:`~repro.service.service.CompilationService` (cache-first, misses
fanned over a worker pool), writes one
:class:`~repro.service.api.CompileResponse` JSON object per line, and
prints a hit/miss/wall-clock summary.  A malformed line — bad JSON, bad
payload, unknown device or spec — does **not** abort the batch: it is
reported to stderr with its line number, a ``BatchError`` record holding
the line number and reason takes its place in the output stream (line
order preserved), and the exit code is 2 to signal partial failure (0 =
every line compiled).  Rerunning the same batch against the same
``--cache-dir`` reports 100% hits and pays only lookup time.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Tuple

from ..qls.base import QLSError
from .api import CompileRequest, REQUEST_SCHEMA_VERSION
from .cache import ResultCache
from .fingerprint import canonical_json
from .service import CompilationService


def _build_cache(args: argparse.Namespace) -> ResultCache:
    return ResultCache(
        capacity=args.capacity,
        directory=args.cache_dir,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_age_seconds=args.max_age,
    )


#: What a malformed JSONL line can raise while being parsed/validated.
#: ValueError covers ServiceError plus the circuit/gate/mapping validation
#: errors a malformed payload triggers; QLSError covers bad pipeline specs.
BAD_LINE_ERRORS = (json.JSONDecodeError, KeyError, TypeError, IndexError,
                   ValueError, QLSError)


def _batch_error_record(lineno: int, reason: str) -> str:
    """The canonical per-line failure record of the batch output stream."""
    return canonical_json({
        "schema": REQUEST_SCHEMA_VERSION,
        "type": "BatchError",
        "line": lineno,
        "error": reason,
    })


def _cmd_batch(args: argparse.Namespace) -> int:
    #: (lineno, request-or-None, error-or-None), in input order.
    rows: List[Tuple[int, Optional[CompileRequest], Optional[str]]] = []
    failures = 0
    with open(args.requests, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                request = CompileRequest.from_dict(json.loads(line))
                request.coupling()         # unknown device fails here,
                request.normalized_spec()  # unknown/malformed spec here —
            except BAD_LINE_ERRORS as exc:
                reason = f"bad request: {exc}"
                print(f"error: {args.requests}:{lineno}: {reason}",
                      file=sys.stderr)
                rows.append((lineno, None, reason))
                failures += 1
            else:
                rows.append((lineno, request, None))
    requests = [request for _, request, _ in rows if request is not None]
    service = CompilationService(cache=_build_cache(args),
                                 workers=args.workers)

    done = [0]

    def progress(response) -> None:
        done[0] += 1
        if not args.quiet:
            status = "hit " if response.cache_hit else "miss"
            label = response.provenance.get("instance") or \
                response.provenance.get("normalized_spec")
            print(f"  [{done[0]}/{len(requests)}] {status} "
                  f"{response.request_fingerprint[:12]} {label} "
                  f"swaps={response.result.swap_count} "
                  f"{response.service_seconds:.3f}s")

    started = time.perf_counter()
    try:
        responses = service.submit_many(requests, progress=progress)
    except QLSError as exc:
        # Spec-level validation passed but compilation itself refused the
        # work (e.g. circuit larger than the device).
        print(f"error: compilation failed: {exc}", file=sys.stderr)
        return 1
    wall = time.perf_counter() - started

    if args.out:
        response_iter = iter(responses)
        with open(args.out, "w", encoding="utf-8") as handle:
            for lineno, request, reason in rows:
                if request is None:
                    handle.write(_batch_error_record(lineno, reason) + "\n")
                else:
                    handle.write(
                        canonical_json(next(response_iter).to_dict()) + "\n"
                    )
    hits = sum(1 for r in responses if r.cache_hit)
    print(f"batch: {len(responses)} requests, {hits} hits, "
          f"{len(responses) - hits} misses, {wall:.3f}s wall-clock"
          + (f", {failures} bad lines" if failures else "")
          + (f", responses -> {args.out}" if args.out else ""))
    return 2 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .. import faults
    from ..obs import profile as obs_profile
    from ..obs import trace as obs_trace
    from ..parallel import WorkerPool
    from .jobs import JobManager
    from .server import ServiceServer

    # Fault injection: --faults wins over $REPRO_FAULTS; either arms a
    # deterministic plan for the server's whole lifetime (chaos tests
    # drive a real subprocess this way).
    spec = args.faults if args.faults is not None \
        else os.environ.get(faults.ENV_VAR)
    if spec:
        plan = faults.arm(faults.FaultPlan.from_spec(spec))
        print(f"fault plan armed: {plan.spec()}", flush=True)

    # Observability arming: --trace wins over $REPRO_TRACE; --profile
    # writes per-stage wall/CPU + counter deltas into StageRecords.
    trace_path = args.trace if args.trace is not None \
        else os.environ.get(obs_trace.ENV_VAR)
    writer = obs_trace.start_tracing(trace_path) if trace_path else None
    if writer is not None:
        print(f"tracing to {writer.path}", flush=True)
    if args.profile:
        obs_profile.enable()
        print("profiling armed (StageRecord.profile)", flush=True)

    # One persistent pool for the server's lifetime: every sync batch and
    # every job fans its misses over the same workers (the single
    # concurrency bound), instead of paying process-pool start-up per
    # request.  ProcessPoolExecutor.submit is thread-safe, so concurrent
    # handler threads share it directly.
    pool = WorkerPool(args.workers) \
        if args.workers is not None and args.workers > 1 else None
    service = CompilationService(cache=_build_cache(args), pool=pool)
    jobs = JobManager(service, journal=args.journal,
                      max_queued=args.max_queued)
    if args.journal and jobs.recovered_jobs:
        print(f"journal: recovered {jobs.recovered_jobs} job(s) "
              f"from {args.journal}", flush=True)
    server = ServiceServer(service=service, jobs=jobs,
                           host=args.host, port=args.port)
    store = args.cache_dir or "in-memory"
    print(f"serving on {server.url} (cache: {store}); Ctrl-C to stop",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        clean = server.shutdown()
        if pool is not None:
            pool.shutdown()
        if writer is not None:
            obs_trace.stop_tracing()
            print(f"trace: {writer.spans_written} spans -> {writer.path}",
                  flush=True)
    return 0 if clean else 1


def _cmd_cache_info(args: argparse.Namespace) -> int:
    info = _build_cache(args).info()
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    removed = _build_cache(args).clear()
    print(f"cleared {removed} cache entries from {args.cache_dir}")
    return 0


def _cmd_make_requests(args: argparse.Namespace) -> int:
    from ..arch.library import get_architecture
    from ..qubikos.generator import generate

    device = get_architecture(args.device)
    lines: List[str] = []
    for index in range(args.count):
        instance = generate(device, num_swaps=args.swaps,
                            num_two_qubit_gates=args.gates,
                            seed=args.seed + index)
        request = CompileRequest.from_instance(
            instance, spec=args.spec, seed=args.seed,
            router_only=args.router_only,
        )
        lines.append(canonical_json(request.to_dict()))
    payload = "".join(line + "\n" for line in lines)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            out.write(payload)
        print(f"wrote {len(lines)} requests -> {args.out}")
    else:
        sys.stdout.write(payload)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="persistent cache directory (default: in-memory)")
        p.add_argument("--capacity", type=int, default=1024,
                       help="in-memory LRU capacity")
        p.add_argument("--max-entries", type=int, default=None,
                       help="disk-tier entry cap (LRU-by-mtime eviction)")
        p.add_argument("--max-bytes", type=int, default=None,
                       help="disk-tier byte cap (LRU-by-mtime eviction)")
        p.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                       help="disk-tier age cap; older entries expire")

    batch = sub.add_parser("batch", help="compile a JSONL request stream")
    batch.add_argument("requests", help="input JSONL of CompileRequest objects")
    batch.add_argument("--out", default=None,
                       help="output JSONL of CompileResponse objects "
                            "(BatchError records for bad input lines)")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker-pool size for cache misses "
                            "(default: serial)")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress per-request progress lines")
    add_cache_args(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser("serve", help="run the HTTP serving front-end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="listen port (0 = ephemeral, printed on start)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker-pool size for batch cache misses")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="write-ahead job journal (JSONL); queued jobs "
                            "survive a crash and are re-queued on restart")
    serve.add_argument("--max-queued", type=int, default=None, metavar="N",
                       help="bound the job queue; admissions past the bound "
                            "get 503 + Retry-After (load shedding)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write JSONL trace spans to PATH (overrides "
                            "$REPRO_TRACE; summarize with 'python -m "
                            "repro.obs trace-summary PATH')")
    serve.add_argument("--profile", action="store_true",
                       help="record per-stage wall/CPU time and router "
                            "call counts into StageRecord.profile")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="arm a deterministic fault plan (see repro.faults;"
                            " default: $REPRO_FAULTS when set)")
    add_cache_args(serve)
    serve.set_defaults(func=_cmd_serve)

    info = sub.add_parser("cache-info", help="inspect a cache")
    add_cache_args(info)
    info.set_defaults(func=_cmd_cache_info)

    clear = sub.add_parser("cache-clear", help="drop every cache entry")
    add_cache_args(clear)
    clear.set_defaults(func=_cmd_cache_clear)

    make = sub.add_parser("make-requests",
                          help="emit a demo JSONL request stream")
    make.add_argument("--device", default="aspen4")
    make.add_argument("--spec", default="sabre")
    make.add_argument("--seed", type=int, default=3)
    make.add_argument("--count", type=int, default=4)
    make.add_argument("--swaps", type=int, default=3)
    make.add_argument("--gates", type=int, default=60)
    make.add_argument("--router-only", action="store_true")
    make.add_argument("--out", default=None)
    make.set_defaults(func=_cmd_make_requests)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
