"""Content-addressed fingerprints for compilation work.

A compilation is fully determined by four things: the circuit *content*
(qubit count + gate stream — names are provenance, not content), the
coupling graph, the normalized pipeline spec, and the seed.  Hashing that
tuple — together with a code/schema epoch — yields a stable key under
which a result can be cached and later returned bit-identically.  Two
devices with different library names but identical coupling graphs share
cache entries; a renamed circuit with the same gates does too.

Invalidation is by construction: any change to the circuit, the device,
the spec (after normalization — presets expand, aliases resolve, stage
arguments sort), the seed, or the :data:`CACHE_EPOCH` yields a different
key, so stale entries are never *returned*, merely orphaned.  Bump
``CACHE_EPOCH`` whenever routing decisions change (the pinned goldens in
``tests/qls/test_perf_equivalence.py`` catching a drift is the signal).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from .. import __version__
from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..pipeline.registry import list_specs, parse_spec
from ..qls.base import RESULT_SCHEMA_VERSION
from ..qubikos.mapping import Mapping

#: Bumping this orphans every existing cache entry.  Do so whenever
#: compilation *decisions* change (new routing behaviour, changed seed
#: handling) — schema-only changes are covered by RESULT_SCHEMA_VERSION.
CACHE_EPOCH = 1


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Hash of the circuit *content*: qubit count + gate stream.

    The circuit name is provenance — two identically-gated circuits with
    different names are the same compilation problem.
    """
    payload = circuit.to_dict()
    payload.pop("name", None)
    return _digest(canonical_json(payload))


def coupling_fingerprint(coupling: CouplingGraph) -> str:
    """Hash of the device graph: qubit count + sorted edge set."""
    return _digest(canonical_json({
        "num_qubits": coupling.num_qubits,
        "edges": [list(edge) for edge in coupling.edges],
    }))


def normalize_spec(spec: str) -> str:
    """Canonical spec string: presets expanded, aliases resolved, stage
    arguments sorted — so every spelling of the same pipeline keys alike.

    ``"lightsabre-tool"``, ``"lightsabre"`` and ``"lightsabre:"``-less
    variants all normalize to ``"lightsabre"``; ``"tket"`` to
    ``"tketlike"``; ``"lightsabre:workers=2,trials=8"`` to
    ``"lightsabre:trials=8,workers=2"``.
    """
    expanded = list_specs().get(spec, spec)
    parts = []
    for name, kwargs in parse_spec(expanded):
        if kwargs:
            args = ",".join(f"{key}={kwargs[key]!r}" for key in sorted(kwargs))
            parts.append(f"{name}:{args}")
        else:
            parts.append(name)
    return "+".join(parts)


def code_fingerprint() -> Dict[str, object]:
    """The code/version component of every cache key and provenance stamp."""
    return {
        "version": __version__,
        "cache_epoch": CACHE_EPOCH,
        "result_schema": RESULT_SCHEMA_VERSION,
    }


def request_fingerprint(circuit: QuantumCircuit, coupling: CouplingGraph,
                        spec: str, seed: Optional[int],
                        initial_mapping: Optional[Mapping] = None) -> str:
    """The content-addressed cache key of one compilation request."""
    return _digest(canonical_json({
        "kind": "compile-request",
        "code": code_fingerprint(),
        "circuit": circuit_fingerprint(circuit),
        "coupling": coupling_fingerprint(coupling),
        "spec": normalize_spec(spec),
        "seed": seed,
        "initial_mapping": (
            [list(pair) for pair in initial_mapping.to_pairs()]
            if initial_mapping is not None else None
        ),
    }))


# -- tool fingerprints (the evaluate() cache path) ---------------------------

#: Attributes never part of a tool's deterministic configuration.
_SKIP_ATTRS = frozenset({"pool"})

_MAX_DEPTH = 10


def _state(obj: object, depth: int = 0) -> object:
    """JSON-able structural snapshot of a tool's configuration.

    Walks public attributes recursively (params dataclasses, nested
    pipelines and passes), special-casing the repo's value types.  Private
    (underscore) attributes, ``pool`` handles, and callables are excluded:
    they are runtime plumbing, not configuration.
    """
    if depth > _MAX_DEPTH:
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_state(item, depth + 1) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(item) for item in obj)
    if isinstance(obj, dict):
        return {str(key): _state(value, depth + 1)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, QuantumCircuit):
        return ["circuit", circuit_fingerprint(obj)]
    if isinstance(obj, Mapping):
        return ["mapping", [list(pair) for pair in obj.to_pairs()]]
    if isinstance(obj, CouplingGraph):
        return ["coupling", coupling_fingerprint(obj)]
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return [type(obj).__name__, {
            key: _state(value, depth + 1)
            for key, value in sorted(attrs.items())
            if key not in _SKIP_ATTRS and not key.startswith("_")
            and not callable(value)
        }]
    return repr(obj)


def pair_fingerprint(tool_fp: str, circuit_fp: str, coupling_fp: str,
                     initial_mapping: Optional[Mapping] = None) -> str:
    """Cache key of one ``evaluate()`` (tool, instance) pair.

    Mirrors :func:`request_fingerprint` with a tool fingerprint in place
    of a (spec, seed): the harness caches results for arbitrary tool
    instances, not just spec-built pipelines.  Takes pre-computed
    circuit/coupling fingerprints so callers iterating a grid hash each
    circuit once, not once per tool.
    """
    return _digest(canonical_json({
        "kind": "evaluate-pair",
        "code": code_fingerprint(),
        "tool": tool_fp,
        "circuit": circuit_fp,
        "coupling": coupling_fp,
        "initial_mapping": (
            [list(pair) for pair in initial_mapping.to_pairs()]
            if initial_mapping is not None else None
        ),
    }))


def tool_fingerprint(tool: object) -> str:
    """Content hash of a tool's *configuration* (class + public state).

    Lets ``evaluate(..., cache=...)`` key results on arbitrary
    :class:`~repro.qls.base.QLSTool` instances — including
    :class:`~repro.pipeline.tool.PipelineTool` chains — without requiring
    them to have been built from a spec string.
    """
    return _digest(canonical_json({
        "kind": "tool",
        "code": code_fingerprint(),
        "state": _state(tool),
    }))
