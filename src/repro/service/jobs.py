"""Asynchronous jobs over the compilation service.

A :class:`Job` is one batch of :class:`~repro.service.api.CompileRequest`
objects moving through the ``queued → running → done/failed`` lifecycle
(``cancelled`` for queued jobs that never ran).  The :class:`JobManager`
owns the queue:

* **Monotonic ids** — jobs are numbered 1, 2, 3, … in admission order;
  ids are never reused within a manager's lifetime.
* **Priority ordering** — higher ``priority`` runs first; ties run in
  admission (FIFO) order.
* **Cancellation** — a *queued* job can be cancelled; cancelling a
  running, finished, failed, or already-cancelled job is a documented
  no-op that returns the job unchanged (the caller inspects ``status``
  to see what happened).  There is no mid-compile abort: compilation is
  CPU-bound work already in flight on the worker pool.
* **Bounded concurrency** — one executor thread drains the queue, so
  jobs execute one at a time; *within* a job, cache misses fan out over
  the service's :class:`~repro.parallel.WorkerPool` exactly as in
  :meth:`CompilationService.submit_many`.  The pool is therefore the
  single concurrency bound for compile work, shared with every other
  submission path.
* **Cache-first admission** — a job whose every request fingerprint is
  already cached completes at submission time without ever entering the
  queue (or touching the pool): 100%-hit work must not wait behind a
  backlog of cold compiles.
* **Load shedding** — ``max_queued`` bounds the queue; admission past
  the bound raises :class:`QueueFullError` carrying a ``retry_after``
  hint, which the HTTP layer turns into 503 + ``Retry-After`` (fully
  cached jobs still complete inline — shedding applies to *queued*
  work, not to free work).
* **Durability** — ``journal=`` attaches a :class:`~repro.service.
  journal.JobJournal` write-ahead log: every admission and transition
  is fsync'd to JSONL before it becomes observable, and a manager built
  over an existing journal re-queues every non-terminal job (original
  ids and priorities) before accepting new work.  Cache-first admission
  then keeps recovery cheap: already-cached fingerprints of an
  interrupted job resolve as hits, never duplicate compiles.
* **Duplicate-fingerprint dedup** — because jobs execute sequentially
  against one shared cache, two jobs carrying the same request
  fingerprint compile it once: the first job's miss warms the cache and
  the second job's occurrence resolves as a hit (the in-batch dedup of
  ``submit_many`` covers duplicates within one job).

Everything here is process-local; the HTTP layer in
:mod:`repro.service.server` exposes it remotely.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .. import faults
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .api import CompileRequest, CompileResponse, ServiceError
from .journal import JobJournal
from .service import ENTRY_DECODE_ERRORS, CompilationService, decode_entry

#: Version of the ``Job.to_dict`` wire schema.
JOB_SCHEMA_VERSION = 1

logger = logging.getLogger(__name__)


class QueueFullError(ServiceError):
    """Admission rejected: the job queue is at ``max_queued``.

    ``retry_after`` is the server's backoff hint in seconds (the HTTP
    layer sends it as the ``Retry-After`` header of the 503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobStatus(enum.Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATUSES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
)


@dataclass
class Job:
    """One asynchronous batch submission and its lifecycle state."""

    id: int
    requests: List[CompileRequest]
    fingerprints: List[str]
    priority: int = 0
    status: JobStatus = JobStatus.QUEUED
    created_seconds: float = field(default_factory=time.time)
    started_seconds: Optional[float] = None
    finished_seconds: Optional[float] = None
    responses: Optional[List[CompileResponse]] = None
    error: Optional[str] = None

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status in TERMINAL_STATUSES

    def to_dict(self, include_responses: bool = True) -> Dict[str, object]:
        """Canonical wire form; responses ride along only when present
        (terminal ``done`` jobs) and requested."""
        payload: Dict[str, object] = {
            "schema": JOB_SCHEMA_VERSION,
            "type": "Job",
            "id": self.id,
            "status": self.status.value,
            "priority": self.priority,
            "request_count": len(self.requests),
            "request_fingerprints": list(self.fingerprints),
            "created_seconds": self.created_seconds,
            "started_seconds": self.started_seconds,
            "finished_seconds": self.finished_seconds,
            "error": self.error,
            "responses": None,
        }
        if include_responses and self.responses is not None:
            payload["responses"] = [r.to_dict() for r in self.responses]
        return payload

    def __repr__(self) -> str:
        return (f"Job(id={self.id}, {self.status.value}, "
                f"priority={self.priority}, requests={len(self.requests)})")


class JobManager:
    """Priority queue of compilation jobs over one shared service.

    ``start=True`` (the default) spawns the daemon executor thread;
    ``start=False`` leaves the queue passive so callers (tests, batch
    drivers) step it deterministically with :meth:`run_next`.

    ``journal`` (a path or a :class:`JobJournal`) makes the queue
    durable: existing records are replayed *before* the executor starts,
    re-queueing every non-terminal job, and the file is compacted to the
    survivors.  ``max_queued`` bounds the queue (load shedding — see the
    module docstring); ``None`` keeps it unbounded.
    """

    def __init__(self, service: Optional[CompilationService] = None,
                 start: bool = True,
                 journal: Union[JobJournal, str, Path, None] = None,
                 max_queued: Optional[int] = None) -> None:
        if max_queued is not None and max_queued < 1:
            raise ValueError("max_queued must be positive (or None)")
        self.service = service if service is not None else CompilationService()
        self.journal = JobJournal(journal) \
            if isinstance(journal, (str, Path)) else journal
        self.max_queued = max_queued
        self.recovered_jobs = 0  # guarded-by: _lock, _wake
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[int, Job] = {}  # guarded-by: _lock, _wake
        self._heap: List[tuple] = []  # (-priority, id): max-priority, FIFO ties; guarded-by: _lock, _wake
        self._ids = itertools.count(1)  # guarded-by: _lock, _wake
        self._closed = False  # guarded-by: _lock, _wake
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock, _wake
        if self.journal is not None:
            self._recover()
        if start:
            self.start()

    # -- submission ------------------------------------------------------------

    def submit(self, requests: Iterable[CompileRequest],
               priority: int = 0) -> Job:
        """Admit a batch as one job; returns it immediately.

        Raises :class:`ServiceError` for an empty batch; device and spec
        problems surface here too (computing the fingerprints validates
        both), so a job that enters the queue can only fail on genuine
        compile errors.  Raises :class:`QueueFullError` when ``max_queued``
        jobs are already waiting (fully cached jobs are exempt — they
        never enter the queue).  A fully cached job completes inline —
        see "cache-first admission" in the module docstring.
        """
        requests = list(requests)
        if not requests:
            raise ServiceError("a job needs at least one request")
        fingerprints = [request.fingerprint() for request in requests]
        inline = self._all_cached(fingerprints)
        # One critical section for the closed-check, registration, and
        # queue insertion: a shutdown() can then only land entirely before
        # (submission rejected) or entirely after (job queued while the
        # executor was still alive) — never between, which would strand a
        # registered job in a queue nobody drains.  The journal append
        # (write-ahead: before the job becomes observable) sits inside the
        # same section so journal order is admission order.
        with self._wake:
            if self._closed:
                raise ServiceError("JobManager was shut down")
            if not inline and self.max_queued is not None \
                    and self._queued_count() >= self.max_queued:
                raise QueueFullError(
                    f"job queue is full ({self.max_queued} queued); "
                    "retry after the backlog drains",
                    retry_after=1.0,
                )
            job = Job(id=next(self._ids), requests=requests,
                      fingerprints=fingerprints, priority=priority)
            if self.journal is not None:
                self.journal.record_submit(job)
            if inline:
                # Registered already RUNNING: the job is never observable
                # as QUEUED, so a concurrent cancel is the documented
                # running-job no-op rather than a race.
                job.status = JobStatus.RUNNING
                job.started_seconds = time.time()
            self._jobs[job.id] = job
            if not inline:
                heapq.heappush(self._heap, (-priority, job.id))
                self._wake.notify_all()
            self._note_transition(job)
        if inline:
            self._execute(job)  # all hits: resolves without the pool
        return job

    def _queued_count(self) -> int:  # requires-lock: _lock
        """Jobs currently waiting in the queue (heap minus cancelled)."""
        return sum(1 for _, job_id in self._heap
                   if self._jobs[job_id].status is JobStatus.QUEUED)

    def _note_transition(self, job: Job) -> None:  # requires-lock: _lock
        """Mirror one status transition into the armed metrics registry;
        must be called with the manager lock held (reads the queue)."""
        if obs_metrics._ACTIVE is None:
            return
        obs_metrics.counter(
            "repro_jobs_transitions_total",
            "Job lifecycle transitions by destination status.",
        ).inc(status=job.status.value)
        obs_metrics.gauge(
            "repro_jobs_queue_depth",
            "Jobs currently waiting in the queue.",
        ).set(self._queued_count())

    def _all_cached(self, fingerprints: List[str]) -> bool:
        """True when every fingerprint has a *decodable* cache entry.

        Peeking (no stats, no LRU promotion) keeps the admission probe
        invisible in hit rates; requiring decodability keeps a corrupt
        disk entry — a miss by the cache's own contract — from pulling a
        full cold compile onto the submitter's thread.
        """
        cache = getattr(self.service, "cache", None)
        if cache is None:
            return False
        for fingerprint in fingerprints:
            entry = cache.peek(fingerprint)
            if entry is None:
                return False
            try:
                decode_entry(entry)
            except ENTRY_DECODE_ERRORS:
                return False
        return True

    # -- inspection ------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        """The job with ``job_id`` (KeyError if unknown)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every known job, in id (admission) order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def counts(self) -> Dict[str, int]:
        """``{status value: job count}`` over every known job."""
        with self._lock:
            counts = {status.value: 0 for status in JobStatus}
            for job in self._jobs.values():
                counts[job.status.value] += 1
            return counts

    def rollup(self) -> Dict[str, object]:
        """Aggregates over every known job, for ``/v1/healthz``:
        request/response volumes, cache hits vs misses across completed
        jobs, queue depth, and mean queue-wait / run times."""
        with self._lock:
            jobs = list(self._jobs.values())
            queued = self._queued_count()
            recovered = self.recovered_jobs
        requests = sum(len(job.requests) for job in jobs)
        hits = misses = 0
        waits: List[float] = []
        runs: List[float] = []
        for job in jobs:
            if job.responses is not None:
                for response in job.responses:
                    if response.cache_hit:
                        hits += 1
                    else:
                        misses += 1
            if job.started_seconds is not None:
                waits.append(job.started_seconds - job.created_seconds)
                if job.finished_seconds is not None:
                    runs.append(job.finished_seconds - job.started_seconds)
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
        return {
            "jobs": len(jobs),
            "queue_depth": queued,
            "requests": requests,
            "responses": {"hits": hits, "misses": misses},
            "recovered_jobs": recovered,
            "mean_wait_seconds": mean(waits),
            "mean_run_seconds": mean(runs),
        }

    # -- lifecycle -------------------------------------------------------------

    def cancel(self, job_id: int) -> Job:
        """Cancel ``job_id`` if it is still queued.

        Running and terminal jobs are returned unchanged (the documented
        no-op); callers distinguish the outcomes by ``status``.
        """
        with self._wake:
            job = self._jobs[job_id]
            if job.status is JobStatus.QUEUED:
                job.status = JobStatus.CANCELLED
                job.finished_seconds = time.time()
                if self.journal is not None:
                    self.journal.record_status(job)
                self._note_transition(job)
                self._wake.notify_all()
            return job

    def run_next(self) -> Optional[Job]:
        """Run the highest-priority queued job to completion; ``None``
        when the queue holds no runnable job.  The executor thread's step
        function, also callable directly on a ``start=False`` manager."""
        job = self._claim()
        if job is None:
            return None
        self._execute(job)
        return job

    def _claim(self) -> Optional[Job]:
        with self._lock:
            while self._heap:
                _, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                if job.status is not JobStatus.QUEUED:
                    continue  # cancelled while queued
                job.status = JobStatus.RUNNING
                job.started_seconds = time.time()
                self._note_transition(job)
                return job
            return None

    def _execute(self, job: Job) -> None:
        """Resolve one job through the service (no locks held while
        compiling; terminal state + wake-up under the lock)."""
        if job.started_seconds is None:
            job.started_seconds = time.time()
        if self.journal is not None:
            self.journal.record_status(job)  # running: marks the attempt
        if faults._ACTIVE is not None:
            point = faults.poll(faults.JOBS_EXECUTE)
            if point is not None and point.kind == faults.DELAY:
                time.sleep(point.seconds)
        try:
            with obs_trace.span("job.execute", job=job.id,
                                requests=len(job.requests)):
                responses = self.service.submit_many(job.requests)
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            status, responses = JobStatus.FAILED, None
            error: Optional[str] = f"{type(exc).__name__}: {exc}"
        else:
            status, error = JobStatus.DONE, None
        with self._wake:
            if not job.done():  # terminal states (cancelled) are final
                job.responses = responses
                job.error = error
                job.status = status
                job.finished_seconds = time.time()
                if self.journal is not None:
                    self.journal.record_status(job)
                self._note_transition(job)
            self._wake.notify_all()

    def wait(self, job_id: int, timeout: Optional[float] = None) -> Job:
        """Block until ``job_id`` reaches a terminal state.

        Raises ``TimeoutError`` after ``timeout`` seconds (``None`` waits
        forever) and ``KeyError`` for an unknown id.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            while True:
                job = self._jobs[job_id]
                if job.done():
                    return job
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.status.value} "
                        f"after {timeout}s"
                    )
                self._wake.wait(remaining if remaining is not None else 0.5)

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: re-queue every non-terminal job under its
        original id and priority, drop terminal ones, continue the id
        counter past everything seen, and compact the file.

        Runs from ``__init__`` before the executor thread exists; the
        lock is uncontended (and re-entrant), so holding it costs
        nothing and keeps the discipline uniform.  Jobs whose every
        fingerprint is already cached complete inline here (cache-first
        admission applies to recovered work too), so a restart never
        re-compiles what the cache kept.
        """
        inline_jobs: List[Job] = []
        with self._wake:
            max_id = 0
            for record in self.journal.replay():
                max_id = max(max_id, record["id"])
                if record["status"] not in ("queued", "running"):
                    continue  # terminal: nothing left to do
                try:
                    requests = [CompileRequest.from_dict(item)
                                for item in record["requests"]]
                except (KeyError, TypeError, ValueError) as exc:
                    logger.warning(
                        "journal: dropping unrecoverable job %s: %s",
                        record["id"], exc)
                    continue
                job = Job(id=record["id"], requests=requests,
                          fingerprints=list(record["fingerprints"]),
                          priority=record["priority"],
                          created_seconds=record["created_seconds"])
                self._jobs[job.id] = job
                if self._all_cached(job.fingerprints):
                    job.status = JobStatus.RUNNING
                    inline_jobs.append(job)
                else:
                    heapq.heappush(self._heap, (-job.priority, job.id))
                self.recovered_jobs += 1
            self._ids = itertools.count(max_id + 1)
            # Compact to the survivors *before* executing the inline
            # ones, so their terminal records land in the fresh file,
            # not the old one.
            self.journal.compact([self._jobs[job_id]
                                  for job_id in sorted(self._jobs)])
        for job in inline_jobs:
            self._execute(job)

    # -- executor thread -------------------------------------------------------

    def start(self) -> None:
        """Spawn the executor thread (idempotent)."""
        with self._lock:
            if self._thread is not None or self._closed:
                return
            self._thread = threading.Thread(
                target=self._drain, name="job-executor", daemon=True
            )
            self._thread.start()

    def _drain(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not self._has_runnable():
                    self._wake.wait(0.5)
                if self._closed:
                    return
            self.run_next()

    def _has_runnable(self) -> bool:  # requires-lock: _lock
        return any(self._jobs[job_id].status is JobStatus.QUEUED
                   for _, job_id in self._heap)

    def shutdown(self, wait: bool = True, timeout: float = 60.0) -> bool:
        """Stop accepting jobs and stop the executor thread.

        A job mid-compile finishes (``wait=True`` joins the thread);
        queued jobs simply never run (with a journal attached they
        survive to the next start-up).  Returns ``True`` for a clean
        stop; ``False`` — with a warning naming the stuck job — when the
        join expired with the executor still compiling.
        """
        with self._wake:
            self._closed = True
            self._wake.notify_all()
            thread = self._thread
        clean = True
        if wait and thread is not None:
            thread.join(timeout=timeout)
            if thread.is_alive():
                clean = False
                with self._lock:
                    stuck = [job.id for job in self._jobs.values()
                             if job.status is JobStatus.RUNNING]
                logger.warning(
                    "JobManager.shutdown: executor still busy after %.0fs "
                    "(running job id%s: %s); thread leaked",
                    timeout, "s" if len(stuck) != 1 else "",
                    ", ".join(map(str, stuck)) or "unknown",
                )
        if self.journal is not None:
            self.journal.close()
        return clean

    def __repr__(self) -> str:
        counts = self.counts()
        busy = ", ".join(f"{status}={count}"
                         for status, count in counts.items() if count)
        return f"JobManager({busy or 'empty'})"
