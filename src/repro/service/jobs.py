"""Asynchronous jobs over the compilation service.

A :class:`Job` is one batch of :class:`~repro.service.api.CompileRequest`
objects moving through the ``queued → running → done/failed`` lifecycle
(``cancelled`` for queued jobs that never ran).  The :class:`JobManager`
owns the queue:

* **Monotonic ids** — jobs are numbered 1, 2, 3, … in admission order;
  ids are never reused within a manager's lifetime.
* **Priority ordering** — higher ``priority`` runs first; ties run in
  admission (FIFO) order.
* **Cancellation** — a *queued* job can be cancelled; cancelling a
  running, finished, failed, or already-cancelled job is a documented
  no-op that returns the job unchanged (the caller inspects ``status``
  to see what happened).  There is no mid-compile abort: compilation is
  CPU-bound work already in flight on the worker pool.
* **Bounded concurrency** — one executor thread drains the queue, so
  jobs execute one at a time; *within* a job, cache misses fan out over
  the service's :class:`~repro.parallel.WorkerPool` exactly as in
  :meth:`CompilationService.submit_many`.  The pool is therefore the
  single concurrency bound for compile work, shared with every other
  submission path.
* **Cache-first admission** — a job whose every request fingerprint is
  already cached completes at submission time without ever entering the
  queue (or touching the pool): 100%-hit work must not wait behind a
  backlog of cold compiles.
* **Duplicate-fingerprint dedup** — because jobs execute sequentially
  against one shared cache, two jobs carrying the same request
  fingerprint compile it once: the first job's miss warms the cache and
  the second job's occurrence resolves as a hit (the in-batch dedup of
  ``submit_many`` covers duplicates within one job).

Everything here is process-local; the HTTP layer in
:mod:`repro.service.server` exposes it remotely.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .api import CompileRequest, CompileResponse, ServiceError
from .service import ENTRY_DECODE_ERRORS, CompilationService, decode_entry

#: Version of the ``Job.to_dict`` wire schema.
JOB_SCHEMA_VERSION = 1


class JobStatus(enum.Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATUSES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
)


@dataclass
class Job:
    """One asynchronous batch submission and its lifecycle state."""

    id: int
    requests: List[CompileRequest]
    fingerprints: List[str]
    priority: int = 0
    status: JobStatus = JobStatus.QUEUED
    created_seconds: float = field(default_factory=time.time)
    started_seconds: Optional[float] = None
    finished_seconds: Optional[float] = None
    responses: Optional[List[CompileResponse]] = None
    error: Optional[str] = None

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status in TERMINAL_STATUSES

    def to_dict(self, include_responses: bool = True) -> Dict[str, object]:
        """Canonical wire form; responses ride along only when present
        (terminal ``done`` jobs) and requested."""
        payload: Dict[str, object] = {
            "schema": JOB_SCHEMA_VERSION,
            "type": "Job",
            "id": self.id,
            "status": self.status.value,
            "priority": self.priority,
            "request_count": len(self.requests),
            "request_fingerprints": list(self.fingerprints),
            "created_seconds": self.created_seconds,
            "started_seconds": self.started_seconds,
            "finished_seconds": self.finished_seconds,
            "error": self.error,
            "responses": None,
        }
        if include_responses and self.responses is not None:
            payload["responses"] = [r.to_dict() for r in self.responses]
        return payload

    def __repr__(self) -> str:
        return (f"Job(id={self.id}, {self.status.value}, "
                f"priority={self.priority}, requests={len(self.requests)})")


class JobManager:
    """Priority queue of compilation jobs over one shared service.

    ``start=True`` (the default) spawns the daemon executor thread;
    ``start=False`` leaves the queue passive so callers (tests, batch
    drivers) step it deterministically with :meth:`run_next`.
    """

    def __init__(self, service: Optional[CompilationService] = None,
                 start: bool = True) -> None:
        self.service = service if service is not None else CompilationService()
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[int, Job] = {}
        self._heap: List[tuple] = []  # (-priority, id): max-priority, FIFO ties
        self._ids = itertools.count(1)
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # -- submission ------------------------------------------------------------

    def submit(self, requests: Iterable[CompileRequest],
               priority: int = 0) -> Job:
        """Admit a batch as one job; returns it immediately.

        Raises :class:`ServiceError` for an empty batch; device and spec
        problems surface here too (computing the fingerprints validates
        both), so a job that enters the queue can only fail on genuine
        compile errors.  A fully cached job completes inline — see
        "cache-first admission" in the module docstring.
        """
        requests = list(requests)
        if not requests:
            raise ServiceError("a job needs at least one request")
        fingerprints = [request.fingerprint() for request in requests]
        job = Job(id=next(self._ids), requests=requests,
                  fingerprints=fingerprints, priority=priority)
        inline = self._all_cached(fingerprints)
        # One critical section for the closed-check, registration, and
        # queue insertion: a shutdown() can then only land entirely before
        # (submission rejected) or entirely after (job queued while the
        # executor was still alive) — never between, which would strand a
        # registered job in a queue nobody drains.
        with self._wake:
            if self._closed:
                raise ServiceError("JobManager was shut down")
            if inline:
                # Registered already RUNNING: the job is never observable
                # as QUEUED, so a concurrent cancel is the documented
                # running-job no-op rather than a race.
                job.status = JobStatus.RUNNING
                job.started_seconds = time.time()
            self._jobs[job.id] = job
            if not inline:
                heapq.heappush(self._heap, (-priority, job.id))
                self._wake.notify_all()
        if inline:
            self._execute(job)  # all hits: resolves without the pool
        return job

    def _all_cached(self, fingerprints: List[str]) -> bool:
        """True when every fingerprint has a *decodable* cache entry.

        Peeking (no stats, no LRU promotion) keeps the admission probe
        invisible in hit rates; requiring decodability keeps a corrupt
        disk entry — a miss by the cache's own contract — from pulling a
        full cold compile onto the submitter's thread.
        """
        cache = getattr(self.service, "cache", None)
        if cache is None:
            return False
        for fingerprint in fingerprints:
            entry = cache.peek(fingerprint)
            if entry is None:
                return False
            try:
                decode_entry(entry)
            except ENTRY_DECODE_ERRORS:
                return False
        return True

    # -- inspection ------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        """The job with ``job_id`` (KeyError if unknown)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every known job, in id (admission) order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def counts(self) -> Dict[str, int]:
        """``{status value: job count}`` over every known job."""
        with self._lock:
            counts = {status.value: 0 for status in JobStatus}
            for job in self._jobs.values():
                counts[job.status.value] += 1
            return counts

    # -- lifecycle -------------------------------------------------------------

    def cancel(self, job_id: int) -> Job:
        """Cancel ``job_id`` if it is still queued.

        Running and terminal jobs are returned unchanged (the documented
        no-op); callers distinguish the outcomes by ``status``.
        """
        with self._wake:
            job = self._jobs[job_id]
            if job.status is JobStatus.QUEUED:
                job.status = JobStatus.CANCELLED
                job.finished_seconds = time.time()
                self._wake.notify_all()
            return job

    def run_next(self) -> Optional[Job]:
        """Run the highest-priority queued job to completion; ``None``
        when the queue holds no runnable job.  The executor thread's step
        function, also callable directly on a ``start=False`` manager."""
        job = self._claim()
        if job is None:
            return None
        self._execute(job)
        return job

    def _claim(self) -> Optional[Job]:
        with self._lock:
            while self._heap:
                _, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                if job.status is not JobStatus.QUEUED:
                    continue  # cancelled while queued
                job.status = JobStatus.RUNNING
                job.started_seconds = time.time()
                return job
            return None

    def _execute(self, job: Job) -> None:
        """Resolve one job through the service (no locks held while
        compiling; terminal state + wake-up under the lock)."""
        if job.started_seconds is None:
            job.started_seconds = time.time()
        try:
            responses = self.service.submit_many(job.requests)
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            status, responses = JobStatus.FAILED, None
            error: Optional[str] = f"{type(exc).__name__}: {exc}"
        else:
            status, error = JobStatus.DONE, None
        with self._wake:
            if not job.done():  # terminal states (cancelled) are final
                job.responses = responses
                job.error = error
                job.status = status
                job.finished_seconds = time.time()
            self._wake.notify_all()

    def wait(self, job_id: int, timeout: Optional[float] = None) -> Job:
        """Block until ``job_id`` reaches a terminal state.

        Raises ``TimeoutError`` after ``timeout`` seconds (``None`` waits
        forever) and ``KeyError`` for an unknown id.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            while True:
                job = self._jobs[job_id]
                if job.done():
                    return job
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.status.value} "
                        f"after {timeout}s"
                    )
                self._wake.wait(remaining if remaining is not None else 0.5)

    # -- executor thread -------------------------------------------------------

    def start(self) -> None:
        """Spawn the executor thread (idempotent)."""
        with self._lock:
            if self._thread is not None or self._closed:
                return
            self._thread = threading.Thread(
                target=self._drain, name="job-executor", daemon=True
            )
            self._thread.start()

    def _drain(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not self._has_runnable():
                    self._wake.wait(0.5)
                if self._closed:
                    return
            self.run_next()

    def _has_runnable(self) -> bool:
        return any(self._jobs[job_id].status is JobStatus.QUEUED
                   for _, job_id in self._heap)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and stop the executor thread.

        A job mid-compile finishes (``wait=True`` joins the thread);
        queued jobs simply never run.
        """
        with self._wake:
            self._closed = True
            self._wake.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join(timeout=60.0)

    def __repr__(self) -> str:
        counts = self.counts()
        busy = ", ".join(f"{status}={count}"
                         for status, count in counts.items() if count)
        return f"JobManager({busy or 'empty'})"
