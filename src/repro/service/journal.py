"""Write-ahead job journal: crash-durable JSONL for the JobManager.

A server restart used to lose every queued job.  :class:`JobJournal`
fixes that with the classic write-ahead pattern: every admission and
every lifecycle transition is appended to one JSONL file — canonical
JSON, one record per line, ``fsync``'d — *before* the in-memory state
changes become observable.  On startup a :class:`~repro.service.jobs.
JobManager` built with ``journal=`` replays the file: non-terminal jobs
(queued, or running when the process died) are re-queued with their
original ids and priorities, terminal jobs are dropped, and the file is
compacted to just the survivors.  Re-running an interrupted job is safe
because compilation is pure and cache-first — already-cached
fingerprints resolve as hits, so recovery never duplicates work.

Record grammar (one JSON object per line)::

    {"event": "submit", "id": 7, "priority": 0, "created_seconds": ...,
     "fingerprints": [...], "requests": [<CompileRequest.to_dict()>...]}
    {"event": "status", "id": 7, "status": "running"}
    {"event": "status", "id": 7, "status": "done", "error": null}

Durability is availability-second: a journal append that fails (disk
full, read-only volume) is counted in :attr:`JobJournal.write_errors`
and the job proceeds un-journaled — a broken journal must degrade the
durability guarantee, never the serving path.  A truncated or corrupt
trailing line (the crash landed mid-append) is skipped and counted, not
fatal: replay keeps every record before it.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List

from .fingerprint import canonical_json

#: Version of the journal line schema.
JOURNAL_SCHEMA_VERSION = 1


class JobJournal:
    """Append-only JSONL write-ahead log of job lifecycle events.

    ``fsync=True`` (the default) flushes every append through to the
    device — the whole point of a WAL; ``fsync=False`` trades crash
    durability for speed in tests.
    """

    def __init__(self, path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.write_errors = 0  # guarded-by: _lock
        self.corrupt_lines = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._handle = None  # guarded-by: _lock

    # -- appending -------------------------------------------------------------

    def record_submit(self, job) -> None:
        """Journal one admission (requests ride along for replay)."""
        self._append({
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": "submit",
            "id": job.id,
            "priority": job.priority,
            "created_seconds": job.created_seconds,
            "fingerprints": list(job.fingerprints),
            "requests": [request.to_dict() for request in job.requests],
        })

    def record_status(self, job) -> None:
        """Journal one lifecycle transition."""
        self._append({
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": "status",
            "id": job.id,
            "status": job.status.value,
            "error": job.error,
        })

    def _append(self, record: Dict[str, object]) -> None:
        line = canonical_json(record) + "\n"
        with self._lock:
            try:
                if self._handle is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(line)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except OSError:
                self.write_errors += 1

    # -- replay ----------------------------------------------------------------

    def replay(self) -> List[Dict[str, object]]:
        """The journaled jobs, in id order, each with its *last* status.

        Returns one dict per ``submit`` record seen —
        ``{"id", "priority", "created_seconds", "fingerprints",
        "requests", "status", "error"}`` — with ``status`` folded forward
        from the status records (``"queued"`` when none followed).
        Corrupt lines (and status records whose submit never made it)
        are skipped and counted in :attr:`corrupt_lines`.
        """
        jobs: Dict[int, Dict[str, object]] = {}
        if not self.path.exists():
            return []
        # Replay normally runs before the journal is shared, but the
        # lock is uncontended then — hold it so the corrupt-line counter
        # stays consistent even for a late diagnostic replay.
        with self._lock, open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    event = record["event"]
                    job_id = int(record["id"])
                    if event == "submit":
                        jobs[job_id] = {
                            "id": job_id,
                            "priority": int(record["priority"]),
                            "created_seconds": record["created_seconds"],
                            "fingerprints": list(record["fingerprints"]),
                            "requests": list(record["requests"]),
                            "status": "queued",
                            "error": None,
                        }
                    elif event == "status":
                        jobs[job_id]["status"] = str(record["status"])
                        jobs[job_id]["error"] = record.get("error")
                    else:
                        raise ValueError(f"unknown event {event!r}")
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
        return [jobs[job_id] for job_id in sorted(jobs)]

    def compact(self, jobs) -> None:
        """Rewrite the journal to just ``jobs`` (their submit records
        plus a status record for any non-queued state) — called after
        recovery so the file stops growing across restart cycles."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(tmp, "w", encoding="utf-8") as handle:
                    for job in jobs:
                        handle.write(canonical_json({
                            "schema": JOURNAL_SCHEMA_VERSION,
                            "event": "submit",
                            "id": job.id,
                            "priority": job.priority,
                            "created_seconds": job.created_seconds,
                            "fingerprints": list(job.fingerprints),
                            "requests": [request.to_dict()
                                         for request in job.requests],
                        }) + "\n")
                        if job.status.value != "queued":
                            handle.write(canonical_json({
                                "schema": JOURNAL_SCHEMA_VERSION,
                                "event": "status",
                                "id": job.id,
                                "status": job.status.value,
                                "error": job.error,
                            }) + "\n")
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                os.replace(tmp, self.path)
            except OSError:
                self.write_errors += 1
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:
        return (f"JobJournal({str(self.path)!r}, fsync={self.fsync}, "
                f"write_errors={self.write_errors})")


__all__ = ["JobJournal", "JOURNAL_SCHEMA_VERSION"]
