"""HTTP client speaking the compilation-service wire schema.

:class:`ServiceClient` mirrors the :class:`CompilationService` surface —
``submit`` / ``submit_many`` / ``map`` with the same signatures and the
same response objects — so harness and application code swaps a local
service for a remote one without changes::

    client = ServiceClient("http://127.0.0.1:8000")
    response = client.submit(request)             # POST /v1/compile
    responses = client.submit_many(requests)      # one batched round trip
    run = evaluate(tools, instances, service=client)  # remote evaluation

Semantics match the local service: ``submit_many`` is one round trip
whose in-batch duplicate/caching behaviour is the server's
``submit_many`` contract (serial-identical ordering, duplicates compile
once), and responses deserialize bit-identically to what a local call
would return (the canonical-JSON schemas round-trip exactly).
``workers`` is forwarded to the server as a fan-out hint; ``pool`` is
accepted for signature compatibility but meaningless across processes
and therefore ignored.

The async side wraps the job endpoints: ``submit_job`` → ``wait_job`` →
``job_responses`` is the remote ``queued → running → done`` flow.  All
failures surface as :class:`RemoteServiceError` carrying the HTTP status
and the server's canonical error message.

Retries
-------
A :class:`RetryPolicy` makes the client survive transient failures —
connection resets, server restarts, 503 load shedding — without ever
duplicating side effects:

* Only **idempotent** calls retry: every ``GET``, plus ``POST
  /v1/compile`` — safe to resubmit because requests are addressed by
  content fingerprint and the server cache dedups (a retried compile
  that already landed is a cache hit, not a second compile).  ``POST
  /v1/jobs`` and ``DELETE`` never retry: resubmitting a job enqueues a
  second one.
* Backoff is exponential with **seeded deterministic jitter** — two
  clients with different seeds desynchronize their retries, and a test
  with a pinned seed replays the exact same schedule.
* A server ``Retry-After`` header (the 503 load-shedding contract)
  overrides the computed delay for that attempt.

Stdlib only (:mod:`urllib.request`) — a client import must never pull in
more than the schema modules.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from .. import faults
from .api import (
    CompileRequest,
    CompileResponse,
    ServiceError,
    decode_responses,
    encode_requests,
)
from .fingerprint import canonical_json

ProgressFn = Callable[[CompileResponse], None]

#: HTTP statuses that signal "try again later", not "you are wrong".
RETRYABLE_STATUSES = frozenset({502, 503, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule for idempotent :class:`ServiceClient` calls.

    ``max_attempts`` counts the first try: 4 means up to 3 retries.  The
    delay before retry *n* (0-based) is ``base_seconds * multiplier**n``
    capped at ``max_seconds``, plus a deterministic jitter drawn in
    ``[0, jitter * delay)`` from a :class:`random.Random` seeded with
    ``seed`` — same seed, same schedule, bit-reproducible chaos tests.
    """

    max_attempts: int = 4
    base_seconds: float = 0.05
    multiplier: float = 2.0
    max_seconds: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts counts the first try; must be >= 1")
        if self.base_seconds < 0 or self.max_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter is a fraction of the delay (0..1)")

    def rng(self) -> random.Random:
        """A fresh jitter stream (one per client, not per call)."""
        return random.Random(self.seed)

    def delay(self, retry: int, rng: random.Random) -> float:
        """Seconds to sleep before 0-based retry number ``retry``."""
        base = min(self.base_seconds * self.multiplier ** retry,
                   self.max_seconds)
        return base + self.jitter * base * rng.random()


class RemoteServiceError(ServiceError):
    """A service call failed remotely (or the server is unreachable).

    ``status`` is the HTTP status code, or ``None`` for transport-level
    failures (connection refused, timeout).  ``retry_after`` carries the
    server's ``Retry-After`` hint when the response had one.
    """

    def __init__(self, message: str, status: Optional[int] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class JobPollTimeout(RemoteServiceError, TimeoutError):
    """``wait_job`` gave up: the job was still non-terminal when the
    timeout expired.  Also a :class:`TimeoutError`, so generic timeout
    handling catches it."""


class ServiceClient:
    """Wire-compatible remote stand-in for :class:`CompilationService`."""

    #: No local cache: present (as ``None``) so code probing the
    #: ``service.cache`` attribute — the evaluation harness's legacy
    #: fallback — degrades predictably instead of raising AttributeError.
    cache = None

    def __init__(self, url: str, timeout: float = 300.0,
                 retry: Optional[RetryPolicy] = None,
                 client_id: Optional[str] = None) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        #: Sent as ``X-Client-Id`` on every request when set; the server
        #: folds per-client request counts into ``/v1/healthz``.
        self.client_id = client_id
        #: Retries performed over this client's lifetime (observability:
        #: chaos tests assert the recovery actually exercised a retry).
        self.retry_count = 0
        self._rng = retry.rng() if retry is not None else None

    # -- transport -------------------------------------------------------------

    @staticmethod
    def _idempotent(method: str, path: str) -> bool:
        """True when a retry cannot duplicate a side effect: every GET,
        plus the fingerprint-keyed (cache-dedup'd) compile POST."""
        return method == "GET" or (method, path) == ("POST", "/v1/compile")

    def _call(self, method: str, path: str,
              payload: Optional[object] = None) -> object:
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        if payload is not None:
            data = canonical_json(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        retries = self.retry.max_attempts - 1 \
            if self.retry is not None and self._idempotent(method, path) \
            else 0
        retry = 0
        while True:
            try:
                return self._call_once(method, path, data, headers)
            except RemoteServiceError as exc:
                transient = exc.status is None \
                    or exc.status in RETRYABLE_STATUSES
                if not transient or retry >= retries:
                    if self.retry is not None and retry:
                        exc.args = (f"{exc.args[0]} "
                                    f"(after {retry + 1} attempts)",)
                    raise
                delay = self.retry.delay(retry, self._rng)
                if exc.retry_after is not None:
                    delay = exc.retry_after  # the server knows best
                retry += 1
                self.retry_count += 1
                time.sleep(delay)

    def _call_once(self, method: str, path: str, data: Optional[bytes],
                   headers: Dict[str, str]) -> object:
        """One attempt; every failure becomes a RemoteServiceError (with
        ``status=None`` for transport-level ones)."""
        if faults._ACTIVE is not None:
            point = faults.poll(faults.CLIENT_REQUEST)
            if point is not None:
                if point.kind == faults.DELAY:
                    time.sleep(point.seconds)
                elif point.kind == faults.RESET:
                    raise RemoteServiceError(
                        f"cannot reach service at {self.url}: "
                        "connection reset [injected fault]"
                    )
        request = urllib.request.Request(self.url + path, data=data,
                                         method=method, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise RemoteServiceError(self._error_message(exc),
                                     status=exc.code,
                                     retry_after=self._retry_after(exc)) \
                from exc
        except (OSError, http.client.HTTPException) as exc:
            # URLError (connection refused, DNS) carries .reason; a mid-
            # response drop (RemoteDisconnected, ConnectionResetError)
            # escapes urllib unwrapped — both are the same transport
            # failure to a caller.
            reason = getattr(exc, "reason", None) or exc
            raise RemoteServiceError(
                f"cannot reach service at {self.url}: {reason}"
            ) from exc
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteServiceError(
                f"service at {self.url} returned non-JSON body"
            ) from exc

    @staticmethod
    def _retry_after(exc: urllib.error.HTTPError) -> Optional[float]:
        """The server's ``Retry-After`` seconds, when parseable."""
        value = exc.headers.get("Retry-After") if exc.headers else None
        try:
            return float(value) if value is not None else None
        except ValueError:
            return None

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        """The server's canonical ``error`` field, or a plain fallback."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return str(payload["error"])
        except Exception:  # noqa: BLE001 - any malformed error body
            return f"HTTP {exc.code}: {exc.reason}"

    # -- synchronous compilation (CompilationService mirror) -------------------

    def submit(self, request: CompileRequest) -> CompileResponse:
        """Compile one request synchronously (``POST /v1/compile``)."""
        payload = self._call("POST", "/v1/compile", request.to_dict())
        return CompileResponse.from_dict(payload)

    def submit_many(self, requests: Iterable[CompileRequest],
                    progress: Optional[ProgressFn] = None,
                    workers: Optional[int] = None,
                    pool: Optional[object] = None,  # noqa: ARG002 - API compat
                    ) -> List[CompileResponse]:
        """Compile a batch in one round trip, responses in request order.

        ``progress`` fires per response during decoding (the whole batch
        has landed by then — streaming granularity is a server-side
        property).  ``workers`` is forwarded as the server-side fan-out
        hint; ``pool`` is ignored (pools do not cross processes).
        """
        requests = list(requests)
        if not requests:
            return []
        extra: Dict[str, object] = {}
        if workers is not None:
            extra["workers"] = workers
        payload = self._call("POST", "/v1/compile",
                             encode_requests(requests, **extra))
        responses = decode_responses(payload)
        if progress is not None:
            for response in responses:
                progress(response)
        return responses

    def map(self, requests: Iterable[CompileRequest],
            progress: Optional[ProgressFn] = None,
            workers: Optional[int] = None,
            pool: Optional[object] = None) -> Iterator[CompileResponse]:
        """Iterate responses in request order (``submit_many`` view)."""
        return iter(self.submit_many(requests, progress=progress,
                                     workers=workers, pool=pool))

    # -- asynchronous jobs -----------------------------------------------------

    def submit_job(self, requests: Iterable[CompileRequest],
                   priority: int = 0) -> Dict[str, object]:
        """Enqueue an async batch (``POST /v1/jobs``); returns the job
        payload (already terminal when cache-first admission applied)."""
        return self._call(
            "POST", "/v1/jobs",
            encode_requests(list(requests), priority=priority),
        )

    def job(self, job_id: int) -> Dict[str, object]:
        """One job's current state (``GET /v1/jobs/<id>``)."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        """Every known job, without response payloads."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel_job(self, job_id: int) -> Dict[str, object]:
        """Cancel a queued job (``DELETE``); running/terminal jobs are a
        no-op — inspect ``status`` in the returned payload."""
        return self._call("DELETE", f"/v1/jobs/{job_id}")

    def wait_job(self, job_id: int, timeout: Optional[float] = 300.0,
                 poll_seconds: float = 0.05,
                 max_poll_seconds: float = 1.0) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns it.

        Polling backs off exponentially from ``poll_seconds`` up to
        ``max_poll_seconds`` so long jobs cost O(log) polls early and a
        bounded request rate after.  On expiry raises
        :class:`JobPollTimeout` (a ``TimeoutError``) naming the poll
        count, so a stuck job reads differently from a slow network.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_seconds
        attempts = 0
        while True:
            payload = self.job(job_id)
            attempts += 1
            if payload["status"] in ("done", "failed", "cancelled"):
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                raise JobPollTimeout(
                    f"job {job_id} still {payload['status']} after "
                    f"{timeout}s ({attempts} polls, backoff "
                    f"{poll_seconds:g}s..{max_poll_seconds:g}s)"
                )
            time.sleep(delay)
            delay = min(delay * 2, max_poll_seconds)

    @staticmethod
    def job_responses(job: Dict[str, object]) -> List[CompileResponse]:
        """Decode a terminal job payload's responses.

        Raises :class:`ServiceError` when the job failed (surfacing the
        recorded error) or has no responses yet.
        """
        if job.get("error"):
            raise ServiceError(
                f"job {job.get('id')} failed: {job['error']}"
            )
        responses = job.get("responses")
        if responses is None:
            raise ServiceError(
                f"job {job.get('id')} is {job.get('status')!r}; responses "
                "are available once it is done"
            )
        return [CompileResponse.from_dict(item) for item in responses]

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._call("GET", "/v1/healthz")

    def devices(self) -> List[str]:
        return self._call("GET", "/v1/devices")["devices"]

    def passes(self) -> Dict[str, object]:
        return self._call("GET", "/v1/passes")

    def cache_info(self) -> Optional[Dict[str, object]]:
        """The server cache's ``info()`` payload (``None`` = disabled)."""
        return self._call("GET", "/v1/cache")["cache"]

    def __repr__(self) -> str:
        return f"ServiceClient({self.url!r})"
