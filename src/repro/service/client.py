"""HTTP client speaking the compilation-service wire schema.

:class:`ServiceClient` mirrors the :class:`CompilationService` surface —
``submit`` / ``submit_many`` / ``map`` with the same signatures and the
same response objects — so harness and application code swaps a local
service for a remote one without changes::

    client = ServiceClient("http://127.0.0.1:8000")
    response = client.submit(request)             # POST /v1/compile
    responses = client.submit_many(requests)      # one batched round trip
    run = evaluate(tools, instances, service=client)  # remote evaluation

Semantics match the local service: ``submit_many`` is one round trip
whose in-batch duplicate/caching behaviour is the server's
``submit_many`` contract (serial-identical ordering, duplicates compile
once), and responses deserialize bit-identically to what a local call
would return (the canonical-JSON schemas round-trip exactly).
``workers`` is forwarded to the server as a fan-out hint; ``pool`` is
accepted for signature compatibility but meaningless across processes
and therefore ignored.

The async side wraps the job endpoints: ``submit_job`` → ``wait_job`` →
``job_responses`` is the remote ``queued → running → done`` flow.  All
failures surface as :class:`RemoteServiceError` carrying the HTTP status
and the server's canonical error message.

Stdlib only (:mod:`urllib.request`) — a client import must never pull in
more than the schema modules.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from .api import (
    CompileRequest,
    CompileResponse,
    ServiceError,
    decode_responses,
    encode_requests,
)
from .fingerprint import canonical_json

ProgressFn = Callable[[CompileResponse], None]


class RemoteServiceError(ServiceError):
    """A service call failed remotely (or the server is unreachable).

    ``status`` is the HTTP status code, or ``None`` for transport-level
    failures (connection refused, timeout).
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Wire-compatible remote stand-in for :class:`CompilationService`."""

    #: No local cache: present (as ``None``) so code probing the
    #: ``service.cache`` attribute — the evaluation harness's legacy
    #: fallback — degrades predictably instead of raising AttributeError.
    cache = None

    def __init__(self, url: str, timeout: float = 300.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _call(self, method: str, path: str,
              payload: Optional[object] = None) -> object:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = canonical_json(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         method=method, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise RemoteServiceError(self._error_message(exc),
                                     status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise RemoteServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteServiceError(
                f"service at {self.url} returned non-JSON body"
            ) from exc

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        """The server's canonical ``error`` field, or a plain fallback."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return str(payload["error"])
        except Exception:  # noqa: BLE001 - any malformed error body
            return f"HTTP {exc.code}: {exc.reason}"

    # -- synchronous compilation (CompilationService mirror) -------------------

    def submit(self, request: CompileRequest) -> CompileResponse:
        """Compile one request synchronously (``POST /v1/compile``)."""
        payload = self._call("POST", "/v1/compile", request.to_dict())
        return CompileResponse.from_dict(payload)

    def submit_many(self, requests: Iterable[CompileRequest],
                    progress: Optional[ProgressFn] = None,
                    workers: Optional[int] = None,
                    pool: Optional[object] = None,  # noqa: ARG002 - API compat
                    ) -> List[CompileResponse]:
        """Compile a batch in one round trip, responses in request order.

        ``progress`` fires per response during decoding (the whole batch
        has landed by then — streaming granularity is a server-side
        property).  ``workers`` is forwarded as the server-side fan-out
        hint; ``pool`` is ignored (pools do not cross processes).
        """
        requests = list(requests)
        if not requests:
            return []
        extra: Dict[str, object] = {}
        if workers is not None:
            extra["workers"] = workers
        payload = self._call("POST", "/v1/compile",
                             encode_requests(requests, **extra))
        responses = decode_responses(payload)
        if progress is not None:
            for response in responses:
                progress(response)
        return responses

    def map(self, requests: Iterable[CompileRequest],
            progress: Optional[ProgressFn] = None,
            workers: Optional[int] = None,
            pool: Optional[object] = None) -> Iterator[CompileResponse]:
        """Iterate responses in request order (``submit_many`` view)."""
        return iter(self.submit_many(requests, progress=progress,
                                     workers=workers, pool=pool))

    # -- asynchronous jobs -----------------------------------------------------

    def submit_job(self, requests: Iterable[CompileRequest],
                   priority: int = 0) -> Dict[str, object]:
        """Enqueue an async batch (``POST /v1/jobs``); returns the job
        payload (already terminal when cache-first admission applied)."""
        return self._call(
            "POST", "/v1/jobs",
            encode_requests(list(requests), priority=priority),
        )

    def job(self, job_id: int) -> Dict[str, object]:
        """One job's current state (``GET /v1/jobs/<id>``)."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        """Every known job, without response payloads."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel_job(self, job_id: int) -> Dict[str, object]:
        """Cancel a queued job (``DELETE``); running/terminal jobs are a
        no-op — inspect ``status`` in the returned payload."""
        return self._call("DELETE", f"/v1/jobs/{job_id}")

    def wait_job(self, job_id: int, timeout: Optional[float] = 300.0,
                 poll_seconds: float = 0.05) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_seconds
        while True:
            payload = self.job(job_id)
            if payload["status"] in ("done", "failed", "cancelled"):
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                raise RemoteServiceError(
                    f"job {job_id} still {payload['status']} "
                    f"after {timeout}s"
                )
            time.sleep(delay)
            delay = min(delay * 2, 1.0)  # back off to 1s polls

    @staticmethod
    def job_responses(job: Dict[str, object]) -> List[CompileResponse]:
        """Decode a terminal job payload's responses.

        Raises :class:`ServiceError` when the job failed (surfacing the
        recorded error) or has no responses yet.
        """
        if job.get("error"):
            raise ServiceError(
                f"job {job.get('id')} failed: {job['error']}"
            )
        responses = job.get("responses")
        if responses is None:
            raise ServiceError(
                f"job {job.get('id')} is {job.get('status')!r}; responses "
                "are available once it is done"
            )
        return [CompileResponse.from_dict(item) for item in responses]

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._call("GET", "/v1/healthz")

    def devices(self) -> List[str]:
        return self._call("GET", "/v1/devices")["devices"]

    def passes(self) -> Dict[str, object]:
        return self._call("GET", "/v1/passes")

    def cache_info(self) -> Optional[Dict[str, object]]:
        """The server cache's ``info()`` payload (``None`` = disabled)."""
        return self._call("GET", "/v1/cache")["cache"]

    def __repr__(self) -> str:
        return f"ServiceClient({self.url!r})"
