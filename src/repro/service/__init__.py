"""Compilation-service API: typed requests, content-addressed caching,
batched submission.

The serving facade over :mod:`repro.pipeline` — how work enters the
system from outside a Python process::

    from repro.service import CompileRequest, CompilationService, ResultCache

    service = CompilationService(cache=ResultCache(directory=".qls-cache"),
                                 workers=4)
    request = CompileRequest.from_instance(inst, spec="lightsabre:trials=8",
                                           seed=7)
    response = service.submit(request)        # miss: compiles + caches
    again = service.submit(request)           # hit: bit-identical result
    assert again.cache_hit
    assert again.result.circuit == response.result.circuit

    responses = service.submit_many(requests) # batch over a WorkerPool

Cache keys are content-addressed: SHA-256 over (circuit gate stream,
coupling graph, normalized spec, seed, pinned mapping, code epoch) — see
:mod:`repro.service.fingerprint` for the exact keying and invalidation
rules.  Hits reconstruct results from canonical JSON payloads and are
bit-identical to recomputation (enforced against the pinned goldens in
``tests/qls/test_perf_equivalence.py``).  The ``python -m repro.service``
CLI does batch compile-from-JSONL and cache inspection/clear.
"""

from .api import (
    REQUEST_SCHEMA_VERSION,
    CompileRequest,
    CompileResponse,
    ServiceError,
    make_provenance,
)
from .cache import CacheStats, ResultCache
from .fingerprint import (
    CACHE_EPOCH,
    canonical_json,
    circuit_fingerprint,
    code_fingerprint,
    coupling_fingerprint,
    normalize_spec,
    request_fingerprint,
    tool_fingerprint,
)
from .service import (
    CompilationService,
    compile_entry,
    decode_entry,
    make_entry,
)

__all__ = [
    "REQUEST_SCHEMA_VERSION",
    "CACHE_EPOCH",
    "CompileRequest",
    "CompileResponse",
    "CompilationService",
    "CacheStats",
    "ResultCache",
    "ServiceError",
    "canonical_json",
    "circuit_fingerprint",
    "code_fingerprint",
    "coupling_fingerprint",
    "compile_entry",
    "decode_entry",
    "make_entry",
    "make_provenance",
    "normalize_spec",
    "request_fingerprint",
    "tool_fingerprint",
]
