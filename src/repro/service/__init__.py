"""Compilation-service API: typed requests, content-addressed caching,
batched submission, and the async job-oriented serving layer.

The serving facade over :mod:`repro.pipeline` — how work enters the
system from outside a Python process::

    from repro.service import CompileRequest, CompilationService, ResultCache

    service = CompilationService(cache=ResultCache(directory=".qls-cache"),
                                 workers=4)
    request = CompileRequest.from_instance(inst, spec="lightsabre:trials=8",
                                           seed=7)
    response = service.submit(request)        # miss: compiles + caches
    again = service.submit(request)           # hit: bit-identical result
    assert again.cache_hit
    assert again.result.circuit == response.result.circuit

    responses = service.submit_many(requests) # batch over a WorkerPool

Remote serving (``python -m repro.service serve --port N``) exposes the
same canonical-JSON schema over stdlib HTTP; :class:`ServiceClient`
mirrors the ``submit``/``submit_many``/``map`` surface so callers swap
local for remote without changes, and :class:`JobManager` adds the
asynchronous ``queued → running → done`` batch lifecycle behind
``POST /v1/jobs``::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8000")
    response = client.submit(request)               # sync, over the wire
    job = client.submit_job(requests, priority=5)   # async batch
    done = client.wait_job(job["id"])
    responses = client.job_responses(done)

Cache keys are content-addressed: SHA-256 over (circuit gate stream,
coupling graph, normalized spec, seed, pinned mapping, code epoch) — see
:mod:`repro.service.fingerprint` for the exact keying and invalidation
rules.  Hits reconstruct results from canonical JSON payloads and are
bit-identical to recomputation (enforced against the pinned goldens in
``tests/qls/test_perf_equivalence.py``).  The ``python -m repro.service``
CLI does serving, batch compile-from-JSONL, and cache inspection/clear.
"""

from .api import (
    REQUEST_SCHEMA_VERSION,
    CompileRequest,
    CompileResponse,
    ServiceError,
    decode_requests,
    decode_responses,
    encode_requests,
    encode_responses,
    error_payload,
    make_provenance,
)
from .cache import CacheStats, ResultCache
from .client import (
    JobPollTimeout,
    RemoteServiceError,
    RetryPolicy,
    ServiceClient,
)
from .fingerprint import (
    CACHE_EPOCH,
    canonical_json,
    circuit_fingerprint,
    code_fingerprint,
    coupling_fingerprint,
    normalize_spec,
    request_fingerprint,
    tool_fingerprint,
)
from .jobs import (
    JOB_SCHEMA_VERSION,
    Job,
    JobManager,
    JobStatus,
    QueueFullError,
)
from .journal import JOURNAL_SCHEMA_VERSION, JobJournal
from .server import ServiceServer, serve
from .service import (
    CompilationService,
    compile_entry,
    decode_entry,
    make_entry,
)

__all__ = [
    "REQUEST_SCHEMA_VERSION",
    "JOB_SCHEMA_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "CACHE_EPOCH",
    "CompileRequest",
    "CompileResponse",
    "CompilationService",
    "CacheStats",
    "Job",
    "JobJournal",
    "JobManager",
    "JobPollTimeout",
    "JobStatus",
    "QueueFullError",
    "RemoteServiceError",
    "ResultCache",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "canonical_json",
    "circuit_fingerprint",
    "code_fingerprint",
    "coupling_fingerprint",
    "compile_entry",
    "decode_entry",
    "decode_requests",
    "decode_responses",
    "encode_requests",
    "encode_responses",
    "error_payload",
    "make_entry",
    "make_provenance",
    "normalize_spec",
    "request_fingerprint",
    "serve",
    "tool_fingerprint",
]
