"""Graph algorithms: VF2 subgraph isomorphism, BFS orders, symmetry."""

from .vf2 import (
    SubgraphMatcher,
    degree_sequence_embeddable,
    is_subgraph_embeddable,
    subgraph_monomorphism,
)
from .search import (
    bfs_edge_order,
    connected_components,
    connecting_edges,
    is_connected,
)
from .automorphism import count_automorphisms, orbit_count, refine_colors, symmetry_score
from .token_swap import (
    TokenSwapError,
    apply_swaps,
    routing_via_token_swapping,
    token_swap_sequence,
)

__all__ = [
    "SubgraphMatcher",
    "degree_sequence_embeddable",
    "is_subgraph_embeddable",
    "subgraph_monomorphism",
    "bfs_edge_order",
    "connected_components",
    "connecting_edges",
    "is_connected",
    "count_automorphisms",
    "orbit_count",
    "refine_colors",
    "symmetry_score",
    "TokenSwapError",
    "apply_swaps",
    "routing_via_token_swapping",
    "token_swap_sequence",
]
