"""VF2-style subgraph monomorphism (Cordella et al., TPAMI 2004).

QUBIKOS needs one question answered, many times: *is the interaction graph
GI isomorphic to a subgraph of the coupling graph GC?*  Formally, does an
injective map ``m: V(GI) -> V(GC)`` exist with every GI edge landing on a GC
edge (a monomorphism — extra GC edges between mapped nodes are allowed,
matching "isomorphic to a subgraph", not "induced subgraph")?

The implementation is a depth-first state-space search with the classic VF2
feasibility cuts adapted to monomorphism, plus a degree-sequence pre-filter
that resolves most QUBIKOS queries without search at all — the generator's
Lemma 1 construction is *designed* to fail the degree count.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


def _stable(nodes: Iterable) -> List:
    """Nodes in a deterministic order.  Nodes are usually ints (qubits)
    but the matcher accepts arbitrary hashables; ``repr`` keeps mixed or
    unorderable node types sortable."""
    return sorted(nodes, key=lambda node: (node,) if isinstance(node, int)
                  else (float("inf"), repr(node)))


class _Graph:
    """Tiny adjacency-set view over arbitrary hashable nodes."""

    def __init__(self, nodes: Iterable, edges: Iterable[Edge]) -> None:
        self.adj: Dict = {node: set() for node in nodes}
        for a, b in edges:
            if a == b:
                continue
            self.adj.setdefault(a, set()).add(b)
            self.adj.setdefault(b, set()).add(a)

    def degree(self, node) -> int:
        return len(self.adj[node])


def degree_sequence_embeddable(pattern_degrees: Sequence[int],
                               host_degrees: Sequence[int]) -> bool:
    """Necessary condition for a monomorphism: match sorted degree sequences.

    Every pattern node of degree ``d`` must map to a *distinct* host node of
    degree >= ``d``.  Greedily matching the descending pattern sequence
    against the descending host sequence decides this exactly (Hall's
    condition for this interval structure).
    """
    pattern = sorted(pattern_degrees, reverse=True)
    host = sorted(host_degrees, reverse=True)
    if len(pattern) > len(host):
        return False
    return all(p <= h for p, h in zip(pattern, host))


class SubgraphMatcher:
    """Searches for a monomorphism from ``pattern`` into ``host``."""

    def __init__(self, pattern_nodes: Iterable, pattern_edges: Iterable[Edge],
                 host_nodes: Iterable, host_edges: Iterable[Edge]) -> None:
        self.pattern = _Graph(pattern_nodes, pattern_edges)
        self.host = _Graph(host_nodes, host_edges)
        # Order pattern nodes by connectivity to already-ordered nodes, then
        # by degree (descending): classic VF2 variable ordering, keeps the
        # partial mapping connected so the edge-consistency cut bites early.
        self._order = self._variable_order()

    def _variable_order(self) -> List:
        # Iterate candidates in sorted order so max() breaks score ties
        # deterministically — tie order decides which mapping the search
        # finds first, which must not depend on set/hash order.
        remaining = set(self.pattern.adj)
        order: List = []
        in_order: Set = set()
        while remaining:
            best = max(
                _stable(remaining),
                key=lambda v: (
                    sum(1 for u in self.pattern.adj[v] if u in in_order),
                    self.pattern.degree(v),
                ),
            )
            order.append(best)
            in_order.add(best)
            remaining.remove(best)
        return order

    def find(self) -> Optional[Dict]:
        """Return one monomorphism as ``{pattern_node: host_node}`` or None."""
        if len(self.pattern.adj) > len(self.host.adj):
            return None
        if not degree_sequence_embeddable(
            [self.pattern.degree(v) for v in self.pattern.adj],
            [self.host.degree(v) for v in self.host.adj],
        ):
            return None
        mapping: Dict = {}
        used: Set = set()
        if self._search(0, mapping, used):
            return dict(mapping)
        return None

    def exists(self) -> bool:
        """True when some monomorphism exists."""
        return self.find() is not None

    def count(self, limit: int = 0) -> int:
        """Count monomorphisms (stop early at ``limit`` when > 0)."""
        if len(self.pattern.adj) > len(self.host.adj):
            return 0
        state = {"count": 0}

        def recurse(depth: int, mapping: Dict, used: Set) -> bool:
            if depth == len(self._order):
                state["count"] += 1
                return bool(limit) and state["count"] >= limit
            node = self._order[depth]
            for candidate in self._candidates(node, mapping, used):
                mapping[node] = candidate
                used.add(candidate)
                if recurse(depth + 1, mapping, used):
                    return True
                del mapping[node]
                used.discard(candidate)
            return False

        recurse(0, {}, set())
        return state["count"]

    # -- internals ------------------------------------------------------------

    def _candidates(self, node, mapping: Dict, used: Set) -> List:
        mapped_neighbors = [mapping[u] for u in self.pattern.adj[node] if u in mapping]
        if mapped_neighbors:
            # Must be a common host-neighbor of all mapped pattern-neighbors.
            pool = set(self.host.adj[mapped_neighbors[0]])
            for h in mapped_neighbors[1:]:
                pool &= self.host.adj[h]
        else:
            pool = set(self.host.adj)
        degree = self.pattern.degree(node)
        # Candidate order decides which monomorphism _search returns;
        # sort so the result is independent of set/hash order.
        return [c for c in _stable(pool)
                if c not in used and self.host.degree(c) >= degree]

    def _search(self, depth: int, mapping: Dict, used: Set) -> bool:
        if depth == len(self._order):
            return True
        node = self._order[depth]
        for candidate in self._candidates(node, mapping, used):
            mapping[node] = candidate
            used.add(candidate)
            if self._search(depth + 1, mapping, used):
                return True
            del mapping[node]
            used.discard(candidate)
        return False


def subgraph_monomorphism(pattern_edges: Iterable[Edge], host_edges: Iterable[Edge],
                          pattern_nodes: Optional[Iterable] = None,
                          host_nodes: Optional[Iterable] = None) -> Optional[Dict]:
    """Convenience wrapper: one monomorphism or ``None``.

    Node sets default to the endpoints appearing in the edge lists; pass them
    explicitly when isolated nodes matter.
    """
    pattern_edges = list(pattern_edges)
    host_edges = list(host_edges)
    if pattern_nodes is None:
        pattern_nodes = {v for e in pattern_edges for v in e}
    if host_nodes is None:
        host_nodes = {v for e in host_edges for v in e}
    return SubgraphMatcher(pattern_nodes, pattern_edges, host_nodes, host_edges).find()


def is_subgraph_embeddable(pattern_edges: Iterable[Edge], host_edges: Iterable[Edge],
                           pattern_nodes: Optional[Iterable] = None,
                           host_nodes: Optional[Iterable] = None) -> bool:
    """True when the pattern embeds into the host (monomorphism exists)."""
    return subgraph_monomorphism(
        pattern_edges, host_edges, pattern_nodes, host_nodes
    ) is not None
