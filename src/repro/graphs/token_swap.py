"""Approximate token swapping on graphs.

Token swapping: every vertex of a graph holds a token; a SWAP exchanges the
tokens on adjacent vertices; reach a target token placement with few SWAPs.
It is the routing substrate of the "qubit allocation = subgraph isomorphism
+ token swapping" school (Siraichi et al., OOPSLA 2019 — the paper's
reference [15]) and of layout-permutation passes in production compilers.

The implementation combines two phases:

1. **Happy-swap greedy** (from Miltzow et al., ESA 2016): while some swap
   moves *both* participating tokens strictly closer to their targets (a
   free slot counts as willing), perform it.  Each happy swap decreases the
   total distance potential by >= 1, so this phase terminates on its own.
2. **Spanning-tree leaf elimination** (the classic token-sorting-on-trees
   routine): build a BFS spanning tree, repeatedly take a leaf, route the
   token destined for it along the unique tree path, then delete the leaf.
   Every leaf is finalized exactly once, giving unconditional termination
   and an O(n * diameter) swap bound.

The greedy phase supplies most of the quality (it solves the easy bulk
near-optimally); the tree phase guarantees completion on the residue.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


class TokenSwapError(RuntimeError):
    """Raised when token swapping cannot complete (disconnected targets)."""


def token_swap_sequence(targets: Dict[int, int],
                        neighbors: Callable[[int], Sequence[int]],
                        distance: Callable[[int, int], int],
                        max_iterations: Optional[int] = None) -> List[Edge]:
    """SWAP sequence sending the token on vertex ``v`` to ``targets[v]``.

    ``targets`` maps vertices to the destination of the token they
    currently hold; destinations must be pairwise distinct.  Vertices not
    mentioned hold "don't care" tokens that may be displaced freely.
    """
    token_at: Dict[int, Optional[int]] = dict(targets)
    if len(set(token_at.values())) != len(token_at):
        raise TokenSwapError("two tokens share a target vertex")

    swaps: List[Edge] = []

    def apply(a: int, b: int) -> None:
        ta, tb = token_at.get(a), token_at.get(b)
        if tb is None:
            token_at.pop(a, None)
        else:
            token_at[a] = tb
        if ta is None:
            token_at.pop(b, None)
        else:
            token_at[b] = ta
        swaps.append((a, b) if a < b else (b, a))

    def misplaced() -> List[int]:
        return [v for v, t in token_at.items() if t is not None and t != v]

    # ---- phase 1: happy-swap greedy (strict potential decrease) ----------
    total = sum(distance(v, t) for v, t in token_at.items() if t is not None)
    budget = 2 * total + 8
    while budget > 0:
        budget -= 1
        happy = None
        for v in sorted(misplaced()):
            tv = token_at[v]
            for u in sorted(neighbors(v)):
                if distance(u, tv) >= distance(v, tv):
                    continue
                tu = token_at.get(u)
                if tu is None or distance(v, tu) < distance(u, tu):
                    happy = (v, u)
                    break
            if happy:
                break
        if happy is None:
            break
        apply(*happy)

    remaining = misplaced()
    if not remaining:
        return swaps

    # ---- phase 2: spanning-tree leaf elimination --------------------------
    vertices, parent = _bfs_spanning_tree(remaining[0], neighbors)
    needed = set(remaining) | {token_at[v] for v in remaining}
    if not needed <= vertices:
        raise TokenSwapError("targets span a disconnected region")
    adjacency: Dict[int, Set[int]] = {v: set() for v in vertices}
    for child, par in parent.items():
        adjacency[child].add(par)
        adjacency[par].add(child)

    alive = set(vertices)

    def tree_path(a: int, b: int) -> List[int]:
        """Unique path between a and b in the (alive) spanning tree."""
        seen = {a: a}
        queue = deque([a])
        while queue:
            cur = queue.popleft()
            if cur == b:
                path = [b]
                while path[-1] != a:
                    path.append(seen[path[-1]])
                return path[::-1]
            for nxt in adjacency[cur]:
                if nxt in alive and nxt not in seen:
                    seen[nxt] = cur
                    queue.append(nxt)
        raise TokenSwapError(f"no tree path between {a} and {b}")

    while len(alive) > 1:
        leaf = next(
            v for v in sorted(alive)
            if sum(1 for u in adjacency[v] if u in alive) <= 1
        )
        # Which token must end at this leaf?
        holder = None
        for v, t in token_at.items():
            if t == leaf and v in alive:
                holder = v
                break
        if holder is not None and holder != leaf:
            path = tree_path(holder, leaf)
            for a, b in zip(path, path[1:]):
                apply(a, b)
        elif token_at.get(leaf) is not None and token_at[leaf] != leaf:
            # A token is stranded on the leaf: push it one step inward so it
            # stays in the shrinking tree.
            inward = next(u for u in sorted(adjacency[leaf]) if u in alive)
            apply(leaf, inward)
        alive.remove(leaf)

    if misplaced():
        raise TokenSwapError("leaf elimination left misplaced tokens; "
                             "targets outside the connected component?")
    return swaps


def _bfs_spanning_tree(root: int, neighbors: Callable[[int], Sequence[int]]
                       ) -> Tuple[Set[int], Dict[int, int]]:
    """All vertices reachable from ``root`` plus BFS-tree parent pointers."""
    parent: Dict[int, int] = {}
    seen = {root}
    queue = deque([root])
    while queue:
        cur = queue.popleft()
        for nxt in neighbors(cur):
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = cur
                queue.append(nxt)
    return seen, parent


def apply_swaps(placement: Dict[int, int], swaps: Sequence[Edge]) -> Dict[int, int]:
    """Replay ``swaps`` over a vertex->token placement (for verification)."""
    state = dict(placement)
    for a, b in swaps:
        ta, tb = state.get(a), state.get(b)
        if tb is None:
            state.pop(a, None)
        else:
            state[a] = tb
        if ta is None:
            state.pop(b, None)
        else:
            state[b] = ta
    return state


def routing_via_token_swapping(current: Dict[int, int], desired: Dict[int, int],
                               neighbors: Callable[[int], Sequence[int]],
                               distance: Callable[[int, int], int]) -> List[Edge]:
    """SWAPs transforming mapping ``current`` into ``desired``.

    Both arguments map program qubits to physical vertices; the returned
    SWAPs act on physical vertices.
    """
    targets = {}
    for q, p in current.items():
        if q not in desired:
            continue
        targets[p] = desired[q]
    return token_swap_sequence(targets, neighbors, distance)
