"""Graph traversal helpers used by the QUBIKOS backbone construction.

Algorithm 2 of the paper orders a section's gates by the *edge visit order*
of a BFS over the section's interaction graph, and requires that graph to be
connected (adding coupling-edge gates to connect components when it is not).
Both primitives live here, expressed over plain edge lists so the circuit and
physical layers can share them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


def _adjacency(edges: Iterable[Edge]) -> Dict[int, Set[int]]:
    adj: Dict[int, Set[int]] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return adj


def bfs_edge_order(edges: Sequence[Edge], sources: Sequence[int],
                   skip: Optional[Set[Edge]] = None,
                   tree_only: bool = False) -> List[Edge]:
    """Edges of the graph in BFS discovery order from ``sources``.

    Every edge is emitted exactly once (canonical tuple form).  The defining
    property (used by Lemma 2): when edge ``(u, v)`` is emitted, at least one
    endpoint already appeared in an earlier emitted edge or is a source, so
    consecutive emissions chain through shared nodes.

    ``skip`` drops specific edges (the paper ignores the special gate's edge
    while ordering the rest of the section).  ``tree_only`` restricts the
    output to BFS tree edges — those discovering a new vertex — which still
    touch every reachable vertex.
    """
    skip = skip or set()
    normalized_skip = {tuple(sorted(e)) for e in skip}
    adj = _adjacency(edges)
    order: List[Edge] = []
    emitted: Set[Tuple[int, int]] = set()
    visited: Set[int] = set()
    queue = deque()
    for source in sources:
        if source not in visited:
            visited.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        for nxt in sorted(adj.get(node, ())):
            key = tuple(sorted((node, nxt)))
            if key in normalized_skip or key in emitted:
                continue
            discovers = nxt not in visited
            if tree_only and not discovers:
                continue
            emitted.add(key)
            order.append((key[0], key[1]))
            if discovers:
                visited.add(nxt)
                queue.append(nxt)
    # Edges in components unreachable from the sources are NOT emitted; the
    # caller is responsible for connecting the graph first.
    return order


def connected_components(edges: Iterable[Edge],
                         nodes: Optional[Iterable[int]] = None) -> List[Set[int]]:
    """Connected components over ``edges`` (plus isolated ``nodes``)."""
    adj = _adjacency(edges)
    if nodes is not None:
        for node in nodes:
            adj.setdefault(node, set())
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in sorted(adj):
        if start in seen:
            continue
        component = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            for nxt in adj[cur]:
                if nxt not in component:
                    component.add(nxt)
                    stack.append(nxt)
        seen |= component
        components.append(component)
    return components


def is_connected(edges: Iterable[Edge],
                 nodes: Optional[Iterable[int]] = None) -> bool:
    """True when the graph over ``edges`` (+ isolated nodes) is connected."""
    return len(connected_components(edges, nodes)) <= 1


def connecting_edges(components: List[Set[int]], host_adjacency,
                     host_distance) -> List[Edge]:
    """Edges of the host graph stitching ``components`` into one component.

    ``host_adjacency(v)`` returns the host neighbors of ``v``;
    ``host_distance(a, b)`` the host shortest-path hop count.  Components are
    merged greedily: repeatedly join the two closest components along a host
    shortest path, emitting the path's edges.  All returned edges are host
    edges, so the QUBIKOS generator can realize them as executable gates.
    """
    if len(components) <= 1:
        return []
    groups = [set(c) for c in components]
    added: List[Edge] = []
    while len(groups) > 1:
        base = groups[0]
        # Closest other component by host distance.
        best = None
        for gi in range(1, len(groups)):
            for a in base:
                for b in groups[gi]:
                    d = host_distance(a, b)
                    if best is None or d < best[0]:
                        best = (d, a, b, gi)
        assert best is not None
        _, a, b, gi = best
        path = _host_shortest_path(a, b, host_adjacency)
        for u, v in zip(path, path[1:]):
            added.append((u, v) if u < v else (v, u))
        base |= groups[gi]
        base.update(path)
        del groups[gi]
    # Deduplicate while keeping order.
    seen: Set[Edge] = set()
    unique = []
    for edge in added:
        if edge not in seen:
            seen.add(edge)
            unique.append(edge)
    return unique


def _host_shortest_path(a: int, b: int, host_adjacency) -> List[int]:
    if a == b:
        return [a]
    parent = {a: a}
    queue = deque([a])
    while queue:
        cur = queue.popleft()
        for nxt in host_adjacency(cur):
            if nxt in parent:
                continue
            parent[nxt] = cur
            if nxt == b:
                path = [b]
                while path[-1] != a:
                    path.append(parent[path[-1]])
                return path[::-1]
            queue.append(nxt)
    raise ValueError(f"no host path between {a} and {b}")
