"""Graph symmetry measurement.

The paper attributes part of Rochester's large optimality gap to its having
"fewer axes of symmetry" than Sycamore.  To make that claim reproducible we
count graph automorphisms (self-isomorphisms) with a VF2-style search over
degree-refined candidate classes, and expose a normalized symmetry score.
Counting is exponential in the worst case but fast on the device graphs here
thanks to iterated degree refinement (a 1-dimensional Weisfeiler-Leman).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

Edge = Tuple[int, int]


def _adjacency(n: int, edges: Iterable[Edge]) -> List[Set[int]]:
    adj: List[Set[int]] = [set() for _ in range(n)]
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    return adj


def refine_colors(n: int, adj: List[Set[int]],
                  max_rounds: int = 32) -> List[int]:
    """Iterated neighborhood color refinement (1-WL).

    Returns a stable coloring: two nodes share a color only if no local
    structural difference distinguishes them.  Automorphisms preserve colors,
    so candidate images are restricted to same-color nodes.
    """
    colors = [len(adj[v]) for v in range(n)]
    for _ in range(max_rounds):
        signatures = [
            (colors[v], tuple(sorted(colors[u] for u in adj[v])))
            for v in range(n)
        ]
        palette: Dict = {}
        new_colors = []
        for sig in signatures:
            if sig not in palette:
                palette[sig] = len(palette)
            new_colors.append(palette[sig])
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def count_automorphisms(n: int, edges: Iterable[Edge],
                        limit: int = 100000) -> int:
    """Number of automorphisms of the graph, capped at ``limit``."""
    edges = list(edges)
    adj = _adjacency(n, edges)
    colors = refine_colors(n, adj)
    by_color: Dict[int, List[int]] = {}
    for v, c in enumerate(colors):
        by_color.setdefault(c, []).append(v)
    # Order variables: rarest color class first, then by degree.
    order = sorted(range(n), key=lambda v: (len(by_color[colors[v]]), -len(adj[v])))
    state = {"count": 0}
    mapping: Dict[int, int] = {}
    used: Set[int] = set()

    def recurse(depth: int) -> bool:
        if depth == n:
            state["count"] += 1
            return state["count"] >= limit
        v = order[depth]
        mapped_neighbors = [mapping[u] for u in adj[v] if u in mapping]
        candidates = [
            w for w in by_color[colors[v]]
            if w not in used and all(w in adj[x] for x in mapped_neighbors)
            # images of non-neighbors must be non-neighbors: automorphism,
            # not just monomorphism.
            and all(w not in adj[mapping[u]]
                    for u in mapping if u not in adj[v] and u != v)
        ]
        for w in candidates:
            mapping[v] = w
            used.add(w)
            if recurse(depth + 1):
                return True
            del mapping[v]
            used.discard(w)
        return False

    recurse(0)
    return state["count"]


def symmetry_score(n: int, edges: Iterable[Edge], limit: int = 100000) -> float:
    """log(#automorphisms) / n — a size-normalized symmetry measure."""
    import math

    count = count_automorphisms(n, edges, limit=limit)
    return math.log(max(count, 1)) / max(n, 1)


def orbit_count(n: int, edges: Iterable[Edge]) -> int:
    """Number of refined color classes — an upper bound on vertex orbits.

    Cheap proxy when full automorphism counting is too slow: fewer classes
    means more symmetric.
    """
    adj = _adjacency(n, list(edges))
    return len(set(refine_colors(n, adj)))
