"""Case-study and ablation analyses (Section IV-C of the paper)."""

from .sabre_costs import (
    RoutingTrace,
    SwapDecision,
    cost_breakdown_table,
    trace_routing,
)
from .case_study import CaseStudy, explain, find_suboptimal_case
from .lookahead_decay import DecaySweepPoint, render_sweep, sweep_lookahead_decay
from .section_stats import SectionStats, collect_stats, section_sizes, stats_table

__all__ = [
    "RoutingTrace",
    "SwapDecision",
    "cost_breakdown_table",
    "trace_routing",
    "CaseStudy",
    "explain",
    "find_suboptimal_case",
    "DecaySweepPoint",
    "render_sweep",
    "sweep_lookahead_decay",
    "SectionStats",
    "collect_stats",
    "section_sizes",
    "stats_table",
]
