"""Lookahead-decay ablation (the paper's proposed SABRE remedy).

Section IV-C suggests weighting extended-set gates by their distance from
the execution layer.  This module sweeps the geometric decay factor over a
QUBIKOS suite and reports the mean SWAP ratio per setting, in both
full-layout and router-only modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..qls.lightsabre import LightSabre
from ..qls.sabre import SabreParameters
from ..qubikos.instance import QubikosInstance
from ..evalx.harness import EvaluationRun, evaluate
from ..evalx.stats import mean


@dataclass(frozen=True)
class DecaySweepPoint:
    """Aggregate for one decay setting."""

    decay: Optional[float]  # None = stock uniform weighting
    mean_ratio: float
    samples: int


def sweep_lookahead_decay(instances: Sequence[QubikosInstance],
                          decays: Iterable[Optional[float]] = (None, 0.9, 0.8, 0.6, 0.4),
                          trials: int = 4,
                          seed: int = 11,
                          router_only: bool = True) -> List[DecaySweepPoint]:
    """Evaluate SABRE at each decay factor; smaller ratio is better."""
    points: List[DecaySweepPoint] = []
    for decay in decays:
        params = SabreParameters(lookahead_decay=decay)
        tool = LightSabre(trials=trials, params=params, seed=seed)
        tool.name = f"sabre(decay={decay})"
        run = evaluate([tool], instances, router_only=router_only)
        ratios = [r.swap_ratio for r in run.records if r.valid]
        points.append(DecaySweepPoint(
            decay=decay, mean_ratio=mean(ratios), samples=len(ratios),
        ))
    return points


def render_sweep(points: Sequence[DecaySweepPoint]) -> str:
    """Plain-text ablation table."""
    lines = [
        "Lookahead-decay ablation (mean SWAP ratio; lower is better)",
        "-" * 58,
        f"{'decay':>8s} {'mean ratio':>12s} {'samples':>8s}",
    ]
    for point in points:
        label = "stock" if point.decay is None else f"{point.decay:.2f}"
        lines.append(
            f"{label:>8s} {point.mean_ratio:12.3f} {point.samples:8d}"
        )
    return "\n".join(lines)
