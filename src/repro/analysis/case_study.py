"""Section IV-C case study: find and explain a suboptimal SABRE routing.

The paper exhibits an Aspen-4 instance where SABRE, *given the optimal
initial mapping*, still routes suboptimally because the uniform-weight
lookahead cost prefers a SWAP that helps far-away gates over the one the
optimal routing needs.  ``find_suboptimal_case`` searches generated
instances for exactly this situation and packages the first diverging
decision with its cost table; ``explain`` renders the narrative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..arch.coupling import CouplingGraph
from ..arch.library import get_architecture
from ..qls.sabre import SabreParameters
from ..qubikos.generator import generate
from ..qubikos.instance import QubikosInstance
from .sabre_costs import RoutingTrace, SwapDecision, cost_breakdown_table, trace_routing


@dataclass
class CaseStudy:
    """A reproducible suboptimal-routing exhibit."""

    instance: QubikosInstance
    trace: RoutingTrace
    divergence: SwapDecision
    params: SabreParameters

    @property
    def excess_swaps(self) -> int:
        return self.trace.total_swaps - self.instance.optimal_swaps

    def lookahead_caused(self) -> Optional[bool]:
        """True when the witness SWAP lost *only* on the lookahead term."""
        chosen = self.divergence.score_of(self.divergence.chosen)
        witness = (
            self.divergence.score_of(self.divergence.witness_swap)
            if self.divergence.witness_swap else None
        )
        if chosen is None or witness is None:
            return None
        same_basic = abs(chosen.basic - witness.basic) < 1e-9
        same_decay = abs(chosen.decay - witness.decay) < 1e-9
        return same_basic and same_decay and chosen.lookahead < witness.lookahead - 1e-9

    def tie_broken(self) -> bool:
        """True when chosen and witness SWAPs had identical total cost."""
        chosen = self.divergence.score_of(self.divergence.chosen)
        witness = (
            self.divergence.score_of(self.divergence.witness_swap)
            if self.divergence.witness_swap else None
        )
        if chosen is None or witness is None:
            return False
        return abs(chosen.total - witness.total) < 1e-9


def find_suboptimal_case(architecture: str = "sycamore54",
                         params: Optional[SabreParameters] = None,
                         num_swaps: int = 6,
                         gate_count: int = 220,
                         seeds: Iterable[int] = range(32),
                         require_lookahead_cause: bool = False
                         ) -> Optional[CaseStudy]:
    """Scan instances for a SABRE divergence from the optimal routing."""
    params = params or SabreParameters()
    coupling = get_architecture(architecture)
    fallback: Optional[CaseStudy] = None
    for seed in seeds:
        instance = generate(
            coupling, num_swaps=num_swaps, num_two_qubit_gates=gate_count,
            seed=seed,
        )
        trace = trace_routing(instance, params=params, seed=seed)
        if trace.total_swaps <= instance.optimal_swaps:
            continue  # SABRE was optimal here
        divergence = trace.best_exhibit()
        if divergence is None:
            continue
        case = CaseStudy(
            instance=instance, trace=trace, divergence=divergence, params=params
        )
        if not require_lookahead_cause:
            return case
        if case.lookahead_caused():
            return case
        if fallback is None:
            fallback = case
    return fallback


def explain(case: CaseStudy) -> str:
    """Human-readable narrative mirroring the paper's Figure 5 discussion."""
    lines = [
        f"Case study on {case.instance.architecture}: instance "
        f"{case.instance.name}",
        f"  optimal SWAP count: {case.instance.optimal_swaps}",
        f"  SABRE routing from the optimal initial mapping used "
        f"{case.trace.total_swaps} SWAPs ({case.excess_swaps} excess)",
        "",
        cost_breakdown_table(case.divergence, case.params),
        "",
    ]
    cause = case.lookahead_caused()
    if cause:
        lines.append(
            "Diagnosis: the chosen SWAP and the optimal SWAP tie on the basic "
            "and decay components; the uniform-weight lookahead over the "
            "extended set preferred the wrong SWAP — the paper's Figure 5 "
            "failure mode. A distance-decayed lookahead (SabreParameters."
            "lookahead_decay) shifts weight toward the execution layer and "
            "can repair this choice."
        )
    elif cause is None:
        lines.append(
            "Diagnosis: the optimal SWAP was not among the scored candidates "
            "at the divergence point (it touches no front-layer qubit), so "
            "SABRE could not have chosen it at this step."
        )
    elif case.tie_broken():
        lines.append(
            "Diagnosis: the chosen and optimal SWAPs tie on every cost "
            "component — the uniform-weight lookahead cannot distinguish the "
            "move that enables the optimal continuation from one that does "
            "not, and the random tie-break picked wrong. The same remedy "
            "applies: a distance-decayed lookahead sharpens the cost enough "
            "to separate such candidates."
        )
    else:
        lines.append(
            "Diagnosis: the divergence involves the basic/decay components, "
            "not only the lookahead term."
        )
    return "\n".join(lines)
