"""Structural statistics of QUBIKOS instances.

Section IV-B of the paper explains its per-architecture gate budgets with:
"a larger architecture requires more gates on average to construct a
section of the backbone circuit as the interaction graph requir[es] more
connections on average to be non-isomorphic."  This module measures that
claim: per-section backbone sizes, connector counts, and anchor degrees,
aggregated per architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..qubikos.instance import QubikosInstance


@dataclass(frozen=True)
class SectionStats:
    """Aggregate backbone-construction statistics for a set of instances."""

    architecture: str
    instances: int
    sections: int
    mean_section_gates: float
    max_section_gates: int
    mean_connectors: float
    mean_anchor_degree: float
    mean_filler_fraction: float


def section_sizes(instance: QubikosInstance) -> List[int]:
    """Backbone two-qubit gates per section (special gate included)."""
    counts = [0] * len(instance.sections)
    for section, filler in zip(instance.gate_sections, instance.gate_fillers):
        if filler or section >= len(instance.sections):
            continue
        counts[section] += 1
    return counts


def collect_stats(instances: Iterable[QubikosInstance]) -> List[SectionStats]:
    """One :class:`SectionStats` per architecture present in ``instances``."""
    by_arch: Dict[str, List[QubikosInstance]] = {}
    for instance in instances:
        by_arch.setdefault(instance.architecture, []).append(instance)
    result = []
    for arch in sorted(by_arch):
        group = by_arch[arch]
        sizes: List[int] = []
        connectors: List[int] = []
        anchors: List[int] = []
        filler_fractions: List[float] = []
        for instance in group:
            sizes.extend(section_sizes(instance))
            connectors.extend(r.connector_count for r in instance.sections)
            anchors.extend(r.anchor_degree for r in instance.sections)
            total = instance.num_two_qubit_gates()
            fillers = sum(instance.gate_fillers)
            filler_fractions.append(fillers / total if total else 0.0)
        result.append(SectionStats(
            architecture=arch,
            instances=len(group),
            sections=len(sizes),
            mean_section_gates=sum(sizes) / max(len(sizes), 1),
            max_section_gates=max(sizes, default=0),
            mean_connectors=sum(connectors) / max(len(connectors), 1),
            mean_anchor_degree=sum(anchors) / max(len(anchors), 1),
            mean_filler_fraction=(
                sum(filler_fractions) / max(len(filler_fractions), 1)
            ),
        ))
    return result


def stats_table(stats: Sequence[SectionStats]) -> str:
    """Text table of per-architecture construction statistics."""
    lines = [
        "Backbone-section statistics (paper Sec IV-B: bigger devices need "
        "bigger sections)",
        "-" * 76,
        f"{'arch':<12s} {'inst':>5s} {'sections':>9s} {'gates/sec':>10s} "
        f"{'max':>5s} {'connectors':>11s} {'anchor deg':>11s}",
    ]
    for s in stats:
        lines.append(
            f"{s.architecture:<12s} {s.instances:>5d} {s.sections:>9d} "
            f"{s.mean_section_gates:>10.1f} {s.max_section_gates:>5d} "
            f"{s.mean_connectors:>11.2f} {s.mean_anchor_degree:>11.2f}"
        )
    return "\n".join(lines)
