"""Instrumented SABRE routing for the paper's Section IV-C case study.

Replays a SABRE routing pass while recording, at every SWAP decision, the
full candidate cost table (basic / lookahead / decay components) and the
SWAP the optimality witness would have taken.  The first point where the
two diverge is exactly the situation Figure 5 of the paper dissects:
both candidates tie on basic+decay cost and the *lookahead* term —
computed over the extended set with uniform weights — tips the choice the
wrong way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DependencyDag, ExecutionFrontier
from ..qubikos.instance import QubikosInstance
from ..qubikos.mapping import Mapping
from ..qls.sabre import SabreCostModel, SabreParameters, SwapScore

Edge = Tuple[int, int]


@dataclass
class SwapDecision:
    """One SWAP decision during instrumented routing."""

    step: int
    front_gates: Tuple[Edge, ...]  # program pairs waiting
    scores: List[SwapScore]
    chosen: Edge
    witness_swap: Optional[Edge]  # next un-fired witness SWAP, if any
    diverged: bool

    def score_of(self, swap: Edge) -> Optional[SwapScore]:
        key = tuple(sorted(swap))
        for score in self.scores:
            if tuple(sorted(score.swap)) == key:
                return score
        return None


@dataclass
class RoutingTrace:
    """Full instrumented routing transcript."""

    instance_name: str
    total_swaps: int
    optimal_swaps: int
    decisions: List[SwapDecision] = field(default_factory=list)
    completed: bool = True

    @property
    def swap_ratio(self) -> float:
        return self.total_swaps / max(self.optimal_swaps, 1)

    def first_divergence(self) -> Optional[SwapDecision]:
        for decision in self.decisions:
            if decision.diverged:
                return decision
        return None

    def divergences(self) -> List[SwapDecision]:
        return [d for d in self.decisions if d.diverged]

    def best_exhibit(self) -> Optional[SwapDecision]:
        """The most instructive diverging decision.

        Preference order: (1) the witness SWAP was scored and lost purely on
        the lookahead term; (2) the witness SWAP was scored and lost on cost;
        (3) any divergence (tie-break or unscored witness).
        """
        scored: List[Tuple[int, SwapDecision]] = []
        for decision in self.divergences():
            witness = (decision.score_of(decision.witness_swap)
                       if decision.witness_swap else None)
            chosen = decision.score_of(decision.chosen)
            if witness is None or chosen is None:
                rank = 2
            elif (abs(chosen.basic - witness.basic) < 1e-9
                  and abs(chosen.decay - witness.decay) < 1e-9
                  and chosen.lookahead < witness.lookahead - 1e-9):
                rank = 0
            elif chosen.total < witness.total - 1e-9:
                rank = 1
            else:
                rank = 2
            scored.append((rank, decision))
        if not scored:
            return None
        best_rank = min(rank for rank, _ in scored)
        for rank, decision in scored:
            if rank == best_rank:
                return decision
        return None


def trace_routing(instance: QubikosInstance,
                  params: Optional[SabreParameters] = None,
                  seed: int = 0,
                  max_swaps: Optional[int] = None) -> RoutingTrace:
    """Route from the instance's optimal initial mapping, recording decisions."""
    params = params or SabreParameters()
    coupling = instance.coupling()
    rng = random.Random(seed)
    skeleton = instance.circuit.without_single_qubit_gates()
    dag = DependencyDag.from_circuit(skeleton)
    frontier = ExecutionFrontier(dag)
    mapping = instance.mapping()
    model = SabreCostModel(coupling, params)
    witness_swaps: List[Edge] = [rec.swap_edge for rec in instance.sections]
    witness_index = 0
    decay: Dict[int, float] = {}
    decisions: List[SwapDecision] = []
    swap_count = 0
    swaps_since_reset = 0
    budget = max_swaps if max_swaps is not None else 50 * max(instance.optimal_swaps, 1) + 200

    while not frontier.done():
        executed = True
        while executed:
            executed = False
            for node in sorted(frontier.front):
                g = dag.gates[node]
                if coupling.has_edge(mapping.phys(g[0]), mapping.phys(g[1])):
                    frontier.execute(node)
                    executed = True
                    decay.clear()
                    swaps_since_reset = 0
                    # Witness bookkeeping: the special gate only becomes
                    # executable after its section's SWAP, so no adjustment
                    # is needed here.
        if frontier.done():
            break
        if swap_count >= budget:
            return RoutingTrace(
                instance_name=instance.name, total_swaps=swap_count,
                optimal_swaps=instance.optimal_swaps, decisions=decisions,
                completed=False,
            )
        front = sorted(frontier.front)
        extended = frontier.following_gates(params.extended_set_size)
        scores = [
            model.score(dag, mapping, swap, front, extended, decay)
            for swap in model.candidate_swaps(dag, frontier, mapping)
        ]
        best_total = min(s.total for s in scores)
        ties = [s for s in scores if s.total <= best_total + 1e-12]
        choice = rng.choice(ties).swap
        witness_swap = (
            witness_swaps[witness_index] if witness_index < len(witness_swaps)
            else None
        )
        diverged = (
            witness_swap is not None
            and tuple(sorted(choice)) != tuple(sorted(witness_swap))
        )
        decisions.append(SwapDecision(
            step=swap_count,
            front_gates=tuple(dag.gates[n].qubit_pair() for n in front),
            scores=scores,
            chosen=choice,
            witness_swap=witness_swap,
            diverged=diverged,
        ))
        if witness_swap is not None and not diverged:
            witness_index += 1
        mapping.swap_physical(*choice)
        swap_count += 1
        swaps_since_reset += 1
        for p in choice:
            if mapping.has_prog_at(p):
                q = mapping.prog(p)
                decay[q] = decay.get(q, 1.0) + params.decay_increment
        if swaps_since_reset >= params.decay_reset_interval:
            decay.clear()
            swaps_since_reset = 0

    return RoutingTrace(
        instance_name=instance.name, total_swaps=swap_count,
        optimal_swaps=instance.optimal_swaps, decisions=decisions,
    )


def cost_breakdown_table(decision: SwapDecision,
                         params: Optional[SabreParameters] = None) -> str:
    """Render the Figure-5-style cost comparison for one decision."""
    params = params or SabreParameters()
    lines = [
        f"SWAP decision at step {decision.step}; front gates: "
        f"{list(decision.front_gates)}",
        f"{'swap':>10s} {'basic':>8s} {'lookahead':>10s} {'decay':>7s} "
        f"{'total':>8s}  note",
    ]
    chosen_key = tuple(sorted(decision.chosen))
    witness_key = (
        tuple(sorted(decision.witness_swap)) if decision.witness_swap else None
    )
    for score in sorted(decision.scores, key=lambda s: s.total):
        key = tuple(sorted(score.swap))
        notes = []
        if key == chosen_key:
            notes.append("<- SABRE's choice")
        if witness_key is not None and key == witness_key:
            notes.append("<- optimal (witness)")
        lines.append(
            f"{str(score.swap):>10s} {score.basic:8.3f} {score.lookahead:10.3f} "
            f"{score.decay:7.3f} {score.total:8.3f}  {' '.join(notes)}"
        )
    lines.append(
        f"(lookahead weight = {params.extended_set_weight}, extended set size = "
        f"{params.extended_set_size}, lookahead decay = {params.lookahead_decay})"
    )
    return "\n".join(lines)
